//! Bench-regression gate over the committed `BENCH_*.json` baselines.
//!
//! Checks every baseline file in `--committed` (default `.`) against the
//! invariant + floor sets in `dirgl_bench::baseline`, and — when a
//! matching file exists under `--fresh` — checks the freshly regenerated
//! copy too, including committed-vs-fresh wall-clock ratio floors when
//! the two were produced at the same `--scale`. Exits nonzero on any
//! failure, so CI can run it directly:
//!
//! ```sh
//! bench_hotpath --out /tmp/fresh/BENCH_hotpath.json
//! bench_kernels --out /tmp/fresh/BENCH_kernels.json
//! bench_gate --committed . --fresh /tmp/fresh
//! ```
//!
//! A baseline file missing from `--committed` fails the gate; one
//! missing from `--fresh` is skipped (the gate does not require every
//! benchmark to be regenerated on every run).

use std::path::Path;

use dirgl_bench::baseline::{check_file, Json, BASELINE_FILES};
use dirgl_bench::cli::{or_exit, ArgStream, CliError};

const USAGE: &str = "usage: bench_gate [--committed DIR] [--fresh DIR]";

struct Opts {
    committed: String,
    fresh: Option<String>,
}

fn try_parse(mut it: ArgStream) -> Result<Opts, CliError> {
    let mut o = Opts {
        committed: ".".to_string(),
        fresh: None,
    };
    while let Some(a) = it.next_arg() {
        match a.as_str() {
            "--committed" => o.committed = it.value("--committed")?,
            "--fresh" => o.fresh = Some(it.value("--fresh")?),
            other => return Err(CliError::unknown_arg(other)),
        }
    }
    Ok(o)
}

fn load(dir: &str, file: &str) -> Result<Option<Json>, String> {
    let path = Path::new(dir).join(file);
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(format!("{}: {e}", path.display())),
    };
    Json::parse(&text)
        .map(Some)
        .map_err(|e| format!("{}: {e}", path.display()))
}

fn main() {
    let Opts { committed, fresh } = or_exit(try_parse(ArgStream::from_env()), USAGE);

    let mut failures = 0usize;
    for file in BASELINE_FILES {
        let cj = match load(&committed, file) {
            Ok(Some(j)) => j,
            Ok(None) => {
                println!("FAIL {file}: missing from --committed {committed}");
                failures += 1;
                continue;
            }
            Err(e) => {
                println!("FAIL {file}: {e}");
                failures += 1;
                continue;
            }
        };
        let fj = match fresh.as_deref().map(|d| load(d, file)).transpose() {
            Ok(o) => o.flatten(),
            Err(e) => {
                println!("FAIL {file}: {e}");
                failures += 1;
                continue;
            }
        };
        let checked_fresh = fj.is_some();
        let problems = check_file(file, &cj, fj.as_ref());
        if problems.is_empty() {
            println!(
                "  ok {file}{}",
                if checked_fresh { " (+fresh)" } else { "" }
            );
        } else {
            for p in &problems {
                println!("FAIL {file}: {p}");
            }
            failures += 1;
        }
    }

    if failures > 0 {
        eprintln!("bench_gate: {failures} baseline file(s) failed");
        std::process::exit(1);
    }
    println!("bench_gate: all baselines pass");
}
