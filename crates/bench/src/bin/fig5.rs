//! Figure 5: breakdown of execution time of Lux and the D-IrGL baseline
//! (Var1) for the medium graphs on 4 P100 GPUs of Bridges (Lux benchmarks:
//! cc, pagerank).

use dirgl_bench::{print_breakdown, Args, BenchId, Breakdown, LoadedDataset, PartitionCache};
use dirgl_core::Variant;
use dirgl_gpusim::Platform;
use dirgl_graph::DatasetId;
use dirgl_partition::Policy;
use lux_sim::LuxRuntime;

fn main() {
    let args = Args::parse();
    let platform = Platform::bridges(4);
    println!("Figure 5: breakdown of Lux vs D-IrGL (Var1, IEC), medium graphs @ 4 GPUs");
    for id in DatasetId::MEDIUM {
        let ld = LoadedDataset::load(id, args.extra_scale);
        let mut cache = PartitionCache::new();
        for bench in [BenchId::Cc, BenchId::Pagerank] {
            let mut rows = Vec::new();
            let lux = LuxRuntime::new(platform.clone(), ld.ds.divisor);
            let lux_result = match bench {
                BenchId::Cc => lux.run_cc(&ld.ds.graph),
                BenchId::Pagerank => {
                    let rounds = dirgl_bench::run_dirgl(
                        BenchId::Pagerank,
                        &ld,
                        &mut cache,
                        &platform,
                        Policy::Iec,
                        Variant::var3(),
                    )
                    .map(|o| o.report.rounds)
                    .unwrap_or(50);
                    lux.run_pagerank(&ld.ds.graph, rounds)
                }
                _ => unreachable!(),
            };
            rows.push(Breakdown {
                label: "Lux".into(),
                result: lux_result,
            });
            rows.push(Breakdown {
                label: "D-IrGL(Var1)".into(),
                result: dirgl_bench::run_dirgl(
                    bench,
                    &ld,
                    &mut cache,
                    &platform,
                    Policy::Iec,
                    Variant::var1(),
                ),
            });
            print_breakdown(&format!("{} / {} @ 4 GPUs", bench.name(), id.name()), &rows);
        }
    }
    println!("\nPaper shape: compute times are similar (both balance only within a");
    println!("thread block); Lux's time goes to waiting + all-shared transfers.");
}
