//! Single-run driver: run any benchmark on any dataset analogue with any
//! configuration, and print the full execution report — the `lonestar`-app
//! equivalent for this workspace.
//!
//! ```sh
//! cargo run --release -p dirgl-bench --bin run -- \
//!     --bench sssp --input uk07 --gpus 32 --policy cvc --variant var4
//! ```

use dirgl_bench::{BenchId, LoadedDataset, PartitionCache};
use dirgl_core::{ExecModel, RunConfig, Variant};
use dirgl_gpusim::{Balancer, Platform};
use dirgl_graph::DatasetId;
use dirgl_partition::Policy;

struct Opts {
    bench: BenchId,
    input: DatasetId,
    gpus: u32,
    policy: Policy,
    variant: Variant,
    platform: String,
    extra_scale: u64,
    gpudirect: bool,
    throttle_ms: f64,
}

fn parse() -> Opts {
    let mut o = Opts {
        bench: BenchId::Bfs,
        input: DatasetId::Rmat23,
        gpus: 4,
        policy: Policy::Cvc,
        variant: Variant::var4(),
        platform: "bridges".into(),
        extra_scale: 1,
        gpudirect: false,
        throttle_ms: 0.0,
    };
    let mut it = std::env::args().skip(1);
    let usage = "usage: run --bench <bfs|cc|kcore|pagerank|sssp> --input <table1 name> \
                 [--gpus N] [--policy <oec|iec|hvc|cvc|random|metis>] \
                 [--variant <var1..var4>] [--platform <bridges|tuxedo>] \
                 [--scale N] [--gpudirect] [--throttle-ms X]";
    while let Some(a) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| panic!("{usage}"));
        match a.as_str() {
            "--bench" => {
                let v = val();
                o.bench = *BenchId::ALL
                    .iter()
                    .find(|b| b.name() == v)
                    .unwrap_or_else(|| panic!("unknown benchmark {v}"));
            }
            "--input" => {
                let v = val();
                o.input = *DatasetId::ALL
                    .iter()
                    .find(|d| d.name() == v)
                    .unwrap_or_else(|| panic!("unknown input {v}"));
            }
            "--gpus" => o.gpus = val().parse().expect("gpus"),
            "--policy" => {
                o.policy = match val().to_lowercase().as_str() {
                    "oec" => Policy::Oec,
                    "iec" => Policy::Iec,
                    "hvc" => Policy::Hvc,
                    "cvc" => Policy::Cvc,
                    "random" => Policy::Random,
                    "metis" | "metislike" => Policy::MetisLike,
                    p => panic!("unknown policy {p}"),
                }
            }
            "--variant" => {
                o.variant = match val().to_lowercase().as_str() {
                    "var1" => Variant::var1(),
                    "var2" => Variant::var2(),
                    "var3" => Variant::var3(),
                    "var4" => Variant::var4(),
                    v => panic!("unknown variant {v}"),
                }
            }
            "--platform" => o.platform = val(),
            "--scale" => o.extra_scale = val().parse().expect("scale"),
            "--gpudirect" => o.gpudirect = true,
            "--throttle-ms" => o.throttle_ms = val().parse().expect("throttle-ms"),
            "--help" | "-h" => {
                println!("{usage}");
                std::process::exit(0);
            }
            other => panic!("unknown argument {other}\n{usage}"),
        }
    }
    o
}

fn main() {
    let o = parse();
    let platform = match o.platform.as_str() {
        "bridges" => Platform::bridges(o.gpus),
        "tuxedo" => Platform::tuxedo_n(o.gpus),
        p => panic!("unknown platform {p}"),
    };
    println!(
        "loading {} (extra scale {}) ...",
        o.input.name(),
        o.extra_scale
    );
    let ld = LoadedDataset::load(o.input, o.extra_scale);
    println!(
        "analogue: |V|={} |E|={} divisor={}",
        ld.ds.graph.num_vertices(),
        ld.ds.graph.num_edges(),
        ld.ds.divisor
    );
    let mut cfg = RunConfig::new(o.policy, o.variant);
    cfg.gpudirect = o.gpudirect;
    cfg.basp_round_gap_secs = o.throttle_ms / 1e3;
    let mut cache = PartitionCache::new();
    println!(
        "running {} / {} / {} ({}{}, {} GPUs on {}) ...",
        o.bench.name(),
        o.policy.name(),
        o.variant.label(),
        format_args!(
            "{}+{}",
            if o.variant.balancer == Balancer::Twc {
                "TWC"
            } else {
                "ALB"
            },
            o.variant.comm
        ),
        if o.variant.model == ExecModel::Sync {
            "+Sync"
        } else {
            "+Async"
        },
        o.gpus,
        o.platform,
    );
    match dirgl_bench::run_dirgl_cfg(o.bench, &ld, &mut cache, &platform, cfg) {
        Ok(out) => {
            let r = &out.report;
            println!("\nexecution report (paper-equivalent units):");
            println!("  total time        : {}", r.total_time);
            println!("  max compute       : {}", r.max_compute());
            println!("  min wait          : {}", r.min_wait());
            println!("  device comm       : {}", r.device_comm());
            println!(
                "  comm volume       : {:.3} GB ({} messages)",
                r.comm_gb(),
                r.messages
            );
            println!("  rounds (min..max) : {}..{}", r.rounds, r.max_rounds);
            println!("  work items        : {:.3e}", r.work_items as f64);
            println!(
                "  max device memory : {:.3} GB",
                r.max_memory() as f64 / 1e9
            );
            println!("  dynamic balance   : {:.3}", r.dynamic_balance());
            println!("  memory balance    : {:.3}", r.memory_balance());
        }
        Err(e) => println!("run failed: {e}"),
    }
}
