//! Single-run driver: run any benchmark on any dataset analogue with any
//! configuration, and print the full execution report — the `lonestar`-app
//! equivalent for this workspace.
//!
//! ```sh
//! cargo run --release -p dirgl-bench --bin run -- \
//!     --bench sssp --input uk07 --gpus 32 --policy cvc --variant var4
//! ```
//!
//! Fault injection rides on `--faults` (see `dirgl_comm::FaultPlan::parse`
//! for the spec grammar):
//!
//! ```sh
//! cargo run --release -p dirgl-bench --bin run -- \
//!     --bench bfs --input rmat25 --faults seed=42,drop=0.05,crash=1@3 \
//!     --checkpoint-every 4
//! ```

use dirgl_bench::cli::{or_exit, parse_source_list, ArgStream, CliError};
use dirgl_bench::{open_trace_file, BenchId, LoadedDataset, PartitionCache, TraceFileSink};
use dirgl_comm::FaultPlan;
use dirgl_core::{Backend, ExecModel, RunConfig, Variant};
use dirgl_gpusim::{Balancer, Platform};
use dirgl_graph::DatasetId;
use dirgl_partition::Policy;

struct Opts {
    bench: BenchId,
    input: DatasetId,
    gpus: u32,
    policy: Policy,
    variant: Variant,
    platform: String,
    extra_scale: u64,
    gpudirect: bool,
    throttle_ms: f64,
    trace: Option<String>,
    faults: Option<FaultPlan>,
    checkpoint_every: u32,
    sources: Option<Vec<u32>>,
    backend: Backend,
}

const USAGE: &str = "usage: run --bench <bfs|cc|kcore|pagerank|sssp> --input <table1 name> \
                     [--gpus N] [--policy <oec|iec|hvc|cvc|random|metis>] \
                     [--variant <var1..var4>] [--platform <bridges|tuxedo>] \
                     [--scale N] [--gpudirect] [--throttle-ms X] [--trace PATH] \
                     [--faults seed=S,drop=P,dup=P,delay=P,crash=D@R[+rejoin],straggler=D@R:N[xF]] \
                     [--checkpoint-every K] \
                     [--sources a,b,c (bfs/sssp: one batched run from every source)] \
                     [--backend <scalar|lanes>]";

fn try_parse(mut it: ArgStream) -> Result<Opts, CliError> {
    let mut o = Opts {
        bench: BenchId::Bfs,
        input: DatasetId::Rmat23,
        gpus: 4,
        policy: Policy::Cvc,
        variant: Variant::var4(),
        platform: "bridges".into(),
        extra_scale: 1,
        gpudirect: false,
        throttle_ms: 0.0,
        trace: None,
        faults: None,
        checkpoint_every: 0,
        sources: None,
        backend: Backend::Scalar,
    };
    while let Some(a) = it.next_arg() {
        match a.as_str() {
            "--bench" => {
                let v = it.value("--bench")?;
                o.bench = *BenchId::ALL
                    .iter()
                    .find(|b| b.name() == v)
                    .ok_or_else(|| CliError::new(format!("unknown benchmark `{v}`")))?;
            }
            "--input" => {
                let v = it.value("--input")?;
                o.input = *DatasetId::ALL
                    .iter()
                    .find(|d| d.name() == v)
                    .ok_or_else(|| CliError::new(format!("unknown input `{v}`")))?;
            }
            "--gpus" => o.gpus = it.parsed("--gpus", "a positive integer")?,
            "--policy" => {
                let v = it.value("--policy")?;
                o.policy = match v.to_lowercase().as_str() {
                    "oec" => Policy::Oec,
                    "iec" => Policy::Iec,
                    "hvc" => Policy::Hvc,
                    "cvc" => Policy::Cvc,
                    "random" => Policy::Random,
                    "metis" | "metislike" => Policy::MetisLike,
                    _ => return Err(CliError::new(format!("unknown policy `{v}`"))),
                };
            }
            "--variant" => {
                let v = it.value("--variant")?;
                o.variant = match v.to_lowercase().as_str() {
                    "var1" => Variant::var1(),
                    "var2" => Variant::var2(),
                    "var3" => Variant::var3(),
                    "var4" => Variant::var4(),
                    _ => return Err(CliError::new(format!("unknown variant `{v}`"))),
                };
            }
            "--platform" => o.platform = it.value("--platform")?,
            "--scale" => o.extra_scale = it.parsed("--scale", "a positive integer")?,
            "--gpudirect" => o.gpudirect = true,
            "--throttle-ms" => o.throttle_ms = it.parsed("--throttle-ms", "a number")?,
            "--trace" => o.trace = Some(it.value("--trace")?),
            "--faults" => {
                let v = it.value("--faults")?;
                o.faults = Some(
                    FaultPlan::parse(&v)
                        .map_err(|e| CliError::new(format!("bad --faults spec: {e}")))?,
                );
            }
            "--checkpoint-every" => {
                o.checkpoint_every = it.parsed("--checkpoint-every", "a round count")?
            }
            "--sources" => {
                let v = it.value("--sources")?;
                o.sources = Some(parse_source_list("--sources", &v)?);
            }
            "--backend" => {
                let v = it.value("--backend")?;
                o.backend = v.parse().map_err(CliError::new)?;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(CliError::unknown_arg(other)),
        }
    }
    Ok(o)
}

fn main() {
    let o = or_exit(try_parse(ArgStream::from_env()), USAGE);
    let platform = match o.platform.as_str() {
        "bridges" => Platform::bridges(o.gpus),
        "tuxedo" => Platform::tuxedo_n(o.gpus),
        p => or_exit(Err(CliError::new(format!("unknown platform `{p}`"))), USAGE),
    };
    // Open the trace sink before the (slow) dataset generation so a bad
    // path — e.g. a missing parent directory — fails fast and by name.
    let mut trace: Option<TraceFileSink> =
        or_exit(o.trace.as_deref().map(open_trace_file).transpose(), USAGE);
    println!(
        "loading {} (extra scale {}) ...",
        o.input.name(),
        o.extra_scale
    );
    let ld = LoadedDataset::load(o.input, o.extra_scale);
    println!(
        "analogue: |V|={} |E|={} divisor={}",
        ld.ds.graph.num_vertices(),
        ld.ds.graph.num_edges(),
        ld.ds.divisor
    );
    let mut cfg = RunConfig::new(o.policy, o.variant);
    cfg.gpudirect = o.gpudirect;
    cfg.basp_round_gap_secs = o.throttle_ms / 1e3;
    cfg.faults = o.faults.clone();
    cfg.checkpoint_every_rounds = o.checkpoint_every;
    let mut cache = PartitionCache::new();
    if let Some(sources) = &o.sources {
        if !matches!(o.bench, BenchId::Bfs | BenchId::Sssp) {
            or_exit::<()>(
                Err(CliError::new(format!(
                    "--sources: {} takes no source (only bfs and sssp batch)",
                    o.bench
                ))),
                USAGE,
            );
        }
        let n = ld.ds.graph.num_vertices();
        if let Some(&bad) = sources.iter().find(|&&s| s >= n) {
            or_exit::<()>(
                Err(CliError::new(format!(
                    "--sources: vertex {bad} out of range (analogue has {n} vertices)"
                ))),
                USAGE,
            );
        }
        println!(
            "running {} from {} sources / {} / {} (backend {}) ...",
            o.bench.name(),
            sources.len(),
            o.policy.name(),
            o.variant.label(),
            o.backend,
        );
        match dirgl_bench::run_dirgl_batch(
            o.bench, &ld, &mut cache, &platform, cfg, sources, o.backend,
        ) {
            Ok(out) => {
                let total: f64 = out
                    .engine_reports
                    .iter()
                    .map(|r| r.total_time.as_secs_f64())
                    .sum();
                let rounds: u32 = out.engine_reports.iter().map(|r| r.max_rounds).sum();
                let msgs: u64 = out.engine_reports.iter().map(|r| r.messages).sum();
                println!("\nbatched multi-source report (paper-equivalent units):");
                println!("  engine passes     : {}", out.engine_reports.len());
                println!("  aggregate time    : {total:.2}s");
                println!("  rounds (sum)      : {rounds}");
                println!("  messages (sum)    : {msgs}");
                println!(
                    "  sources/sec (sim) : {:.3}",
                    out.lanes.len() as f64 / total.max(f64::MIN_POSITIVE)
                );
                println!(
                    "  {:>10}  {:>14}  {:>10}  {:>10}",
                    "source", "sum", "min", "max"
                );
                for l in &out.lanes {
                    println!(
                        "  {:>10}  {:>14.3}  {:>10.3}  {:>10.3}",
                        l.source, l.summary.sum, l.summary.min, l.summary.max
                    );
                }
            }
            Err(e) => println!("run failed: {e}"),
        }
        return;
    }
    println!(
        "running {} / {} / {} ({}{}, {} GPUs on {}) ...",
        o.bench.name(),
        o.policy.name(),
        o.variant.label(),
        format_args!(
            "{}+{}",
            if o.variant.balancer == Balancer::Twc {
                "TWC"
            } else {
                "ALB"
            },
            o.variant.comm
        ),
        if o.variant.model == ExecModel::Sync {
            "+Sync"
        } else {
            "+Async"
        },
        o.gpus,
        o.platform,
    );
    if let Some(f) = &o.faults {
        println!(
            "fault plan: seed={} drop={} dup={} delay={} crash={:?} straggler={:?} \
             checkpoint-every={}",
            f.seed, f.drop, f.duplicate, f.delay, f.crash, f.straggler, o.checkpoint_every
        );
    }
    let result = match trace.as_mut() {
        Some(sink) => {
            dirgl_bench::run_dirgl_cfg_traced(o.bench, &ld, &mut cache, &platform, cfg, sink)
        }
        None => dirgl_bench::run_dirgl_cfg(o.bench, &ld, &mut cache, &platform, cfg),
    };
    match result {
        Ok(out) => {
            let r = &out.report;
            println!("\nexecution report (paper-equivalent units):");
            println!("  total time        : {}", r.total_time);
            println!("  max compute       : {}", r.max_compute());
            println!("  min wait          : {}", r.min_wait());
            println!("  device comm       : {}", r.device_comm());
            println!(
                "  comm volume       : {:.3} GB ({} messages)",
                r.comm_gb(),
                r.messages
            );
            println!("  rounds (min..max) : {}..{}", r.rounds, r.max_rounds);
            println!("  work items        : {:.3e}", r.work_items as f64);
            println!(
                "  max device memory : {:.3} GB",
                r.max_memory() as f64 / 1e9
            );
            println!("  dynamic balance   : {:.3}", r.dynamic_balance());
            println!("  memory balance    : {:.3}", r.memory_balance());
            let s = &r.resilience;
            if o.faults.is_some() {
                println!("  -- resilience --");
                println!(
                    "  link faults       : {} drops, {} dups, {} delay spikes",
                    s.faults.drops_injected, s.faults.duplicates_injected, s.faults.delays_injected
                );
                println!(
                    "  reliable delivery : {} timeouts, {} retransmits, {} dup-suppressed, \
                     {} failures",
                    s.faults.timeouts,
                    s.faults.retransmits,
                    s.faults.duplicates_suppressed,
                    s.faults.delivery_failures
                );
                println!(
                    "  recovery          : {} crashes, {} checkpoints ({} B), {} rollbacks, \
                     {} rounds replayed, {} rejoins, {} masters reassigned, {} recovering",
                    s.crashes,
                    s.checkpoints_taken,
                    s.checkpoint_bytes,
                    s.rollbacks,
                    s.rounds_replayed,
                    s.rejoins,
                    s.masters_reassigned,
                    s.recovery_time
                );
            }
        }
        Err(e) => println!("run failed: {e}"),
    }
}
