//! Table II: fastest execution time of all four frameworks on the
//! single-host multi-GPU system (Tuxedo), using each framework's
//! best-performing GPU count out of {1, 2, 4, 6}. D-IrGL additionally
//! searches its partitioning policies.

use dirgl_bench::{fmt_time, print_row, Args, BenchId, LoadedDataset, PartitionCache};
use dirgl_core::{RunError, RunOutput, Variant};
use dirgl_gpusim::Platform;
use dirgl_graph::DatasetId;
use dirgl_partition::Policy;
use lux_sim::LuxRuntime;
use singlehost_sim::{GrouteSim, GunrockSim};

/// Best (time, gpus, tag) over a set of candidate runs.
fn best(results: Vec<(Result<RunOutput, RunError>, u32, String)>) -> String {
    let mut best: Option<(f64, u32, String)> = None;
    for (r, gpus, tag) in results {
        if let Ok(out) = r {
            let t = out.report.total_time.as_secs_f64();
            if best.as_ref().is_none_or(|(bt, _, _)| t < *bt) {
                best = Some((t, gpus, tag));
            }
        }
    }
    match best {
        Some((t, gpus, tag)) => {
            let tag = if tag.is_empty() {
                String::new()
            } else {
                format!("({tag}) ")
            };
            format!(
                "{tag}{} ({gpus})",
                fmt_time(dirgl_comm::SimTime::from_secs_f64(t))
            )
        }
        None => "OOM".into(),
    }
}

fn main() {
    let args = Args::parse();
    let counts: Vec<u32> = if args.quick {
        vec![1, 6]
    } else {
        vec![1, 2, 4, 6]
    };
    println!("Table II: fastest execution time (sec) on Tuxedo");
    println!("(best-performing GPU count in parentheses; D-IrGL best policy tagged)\n");

    let datasets: Vec<LoadedDataset> = DatasetId::SMALL
        .iter()
        .map(|&id| LoadedDataset::load(id, args.extra_scale))
        .collect();

    let widths = [9usize, 10, 22, 22, 22];
    let mut header = vec!["bench".to_string(), "platform".to_string()];
    header.extend(datasets.iter().map(|ld| ld.ds.id.name().to_string()));
    print_row(&header, &widths);

    for bench in [BenchId::Bfs, BenchId::Cc, BenchId::Pagerank, BenchId::Sssp] {
        // --- Gunrock (no pagerank: "its pr produced incorrect output").
        if bench != BenchId::Pagerank {
            let mut row = vec![bench.name().to_string(), "Gunrock".to_string()];
            for ld in &datasets {
                let mut cands = Vec::new();
                for &n in &counts {
                    let fw = GunrockSim::new(Platform::tuxedo_n(n), ld.ds.divisor);
                    let r = match bench {
                        BenchId::Bfs => fw.run_bfs(&ld.ds.graph),
                        BenchId::Cc => fw.run_cc(&ld.ds.graph),
                        BenchId::Sssp => fw.run_sssp(&ld.ds.graph),
                        _ => unreachable!(),
                    };
                    cands.push((r, n, String::new()));
                }
                row.push(best(cands));
            }
            print_row(&row, &widths);
        }

        // --- Groute.
        let mut row = vec![bench.name().to_string(), "Groute".to_string()];
        for ld in &datasets {
            let mut cands = Vec::new();
            for &n in &counts {
                let fw = GrouteSim::new(Platform::tuxedo_n(n), ld.ds.divisor);
                let r = match bench {
                    BenchId::Bfs => fw.run_bfs(&ld.ds.graph),
                    BenchId::Cc => fw.run_cc(&ld.ds.graph),
                    BenchId::Pagerank => fw.run_pagerank(&ld.ds.graph),
                    BenchId::Sssp => fw.run_sssp(&ld.ds.graph),
                    _ => unreachable!(),
                };
                cands.push((r, n, String::new()));
            }
            row.push(best(cands));
        }
        print_row(&row, &widths);

        // --- Lux (cc and pagerank only).
        if matches!(bench, BenchId::Cc | BenchId::Pagerank) {
            let mut row = vec![bench.name().to_string(), "Lux".to_string()];
            for ld in &datasets {
                let mut cands = Vec::new();
                for &n in &counts {
                    if n < 1 {
                        continue;
                    }
                    let lux = LuxRuntime::new(Platform::tuxedo_n(n), ld.ds.divisor);
                    let r = match bench {
                        BenchId::Cc => lux.run_cc(&ld.ds.graph),
                        // Round parity with D-IrGL's converged pr.
                        BenchId::Pagerank => {
                            let mut cache = PartitionCache::new();
                            let rounds = dirgl_bench::run_dirgl(
                                BenchId::Pagerank,
                                ld,
                                &mut cache,
                                &Platform::tuxedo_n(n),
                                Policy::Iec,
                                Variant::var3(),
                            )
                            .map(|o| o.report.rounds)
                            .unwrap_or(50);
                            lux.run_pagerank(&ld.ds.graph, rounds)
                        }
                        _ => unreachable!(),
                    };
                    cands.push((r, n, "IEC".to_string()));
                }
                row.push(best(cands));
            }
            print_row(&row, &widths);
        }

        // --- D-IrGL: best over policies and GPU counts (Var4 default).
        let mut row = vec![bench.name().to_string(), "D-IrGL".to_string()];
        for ld in &datasets {
            let mut cache = PartitionCache::new();
            let mut cands = Vec::new();
            let policies = if args.quick {
                vec![Policy::Iec, Policy::Cvc]
            } else {
                Policy::DIRGL.to_vec()
            };
            for policy in policies {
                for &n in &counts {
                    let r = dirgl_bench::run_dirgl(
                        bench,
                        ld,
                        &mut cache,
                        &Platform::tuxedo_n(n),
                        policy,
                        Variant::var4(),
                    );
                    cands.push((r, n, policy.name().to_string()));
                }
            }
            row.push(best(cands));
        }
        print_row(&row, &widths);
        println!();
    }
    println!("Paper shape: Gunrock wins bfs (direction optimization); D-IrGL is");
    println!("competitive or best elsewhere; Lux trails on both of its benchmarks.");
}
