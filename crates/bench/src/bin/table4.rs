//! Table IV: static load balance (max/mean edges), dynamic load balance
//! (max/mean compute time) and memory balance (max/mean GPU memory) of
//! D-IrGL for all benchmarks and policies, on uk07 @ 32 GPUs and
//! uk14 @ 64 GPUs.

use dirgl_bench::{print_row, Args, BenchId, LoadedDataset, PartitionCache};
use dirgl_core::Variant;
use dirgl_gpusim::Platform;
use dirgl_graph::DatasetId;
use dirgl_partition::{PartitionMetrics, Policy};

fn main() {
    let args = Args::parse();
    println!("Table IV: static / dynamic / memory load balance of D-IrGL (Var4)\n");
    let configs = [(DatasetId::Uk07, 32u32), (DatasetId::Uk14, 64u32)];
    let widths = [10usize, 8, 8, 8, 8];

    for (id, gpus) in configs {
        let ld = LoadedDataset::load(id, args.extra_scale);
        let platform = Platform::bridges(gpus);
        let mut cache = PartitionCache::new();
        println!("--- {} on {gpus} GPUs ---", id.name());
        print_row(
            &[
                "bench".into(),
                "policy".into(),
                "static".into(),
                "dynamic".into(),
                "memory".into(),
            ],
            &widths,
        );
        for bench in BenchId::ALL {
            // pagerank's IEC/OEC rows only, like the paper (it prints no
            // HVC row for pr)? The paper lists CVC/IEC/OEC for pagerank and
            // all four elsewhere; we print all four everywhere for
            // completeness.
            for policy in Policy::DIRGL {
                let part = cache.get(&ld, bench, policy, gpus);
                let static_balance = PartitionMetrics::compute(part).static_balance;
                let row = dirgl_bench::run_dirgl(
                    bench,
                    &ld,
                    &mut cache,
                    &platform,
                    policy,
                    Variant::var4(),
                );
                match row {
                    Ok(out) => print_row(
                        &[
                            bench.name().into(),
                            policy.name().into(),
                            format!("{:.2}", static_balance),
                            format!("{:.2}", out.report.dynamic_balance()),
                            format!("{:.2}", out.report.memory_balance()),
                        ],
                        &widths,
                    ),
                    Err(_) => print_row(
                        &[
                            bench.name().into(),
                            policy.name().into(),
                            format!("{:.2}", static_balance),
                            "OOM".into(),
                            "OOM".into(),
                        ],
                        &widths,
                    ),
                }
            }
            println!();
        }
    }
    println!("Paper shape: IEC/OEC static ~1.00; CVC/HVC statically imbalanced;");
    println!("static is NOT correlated with dynamic, but static and memory are.");
}
