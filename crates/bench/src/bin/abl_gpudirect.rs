//! Ablation (paper §VII): GPUDirect device↔device communication.
//!
//! The paper's conclusion: "frameworks should adopt modern GPU architecture
//! capabilities such as GPUDirect to avoid data transfers through the
//! host." This ablation reruns the Var4/CVC configuration with the
//! network model's host-staging hops removed (P2P within a host, RDMA
//! across hosts) and reports the speedup.

use dirgl_bench::{print_row, Args, BenchId, LoadedDataset, PartitionCache};
use dirgl_core::{RunConfig, Variant};
use dirgl_gpusim::Platform;
use dirgl_graph::DatasetId;
use dirgl_partition::Policy;

fn main() {
    let args = Args::parse();
    let platform = Platform::bridges(32);
    println!("Ablation: GPUDirect (device<->device) vs host-staged transfers");
    println!("(D-IrGL Var4 + CVC @ 32 GPUs, medium graphs)\n");
    let widths = [12usize, 10, 11, 11, 9];
    print_row(
        &[
            "input".into(),
            "bench".into(),
            "staged(s)".into(),
            "direct(s)".into(),
            "speedup".into(),
        ],
        &widths,
    );
    for id in DatasetId::MEDIUM {
        let ld = LoadedDataset::load(id, args.extra_scale);
        let mut cache = PartitionCache::new();
        for bench in BenchId::ALL {
            let staged = dirgl_bench::run_dirgl(
                bench,
                &ld,
                &mut cache,
                &platform,
                Policy::Cvc,
                Variant::var4(),
            );
            let mut cfg = RunConfig::new(Policy::Cvc, Variant::var4());
            cfg.gpudirect = true;
            let direct = dirgl_bench::run_dirgl_cfg(bench, &ld, &mut cache, &platform, cfg);
            match (staged, direct) {
                (Ok(s), Ok(d)) => {
                    let st = s.report.total_time.as_secs_f64();
                    let dt = d.report.total_time.as_secs_f64();
                    print_row(
                        &[
                            id.name().into(),
                            bench.name().into(),
                            format!("{st:.2}"),
                            format!("{dt:.2}"),
                            format!("{:.2}x", st / dt),
                        ],
                        &widths,
                    );
                }
                _ => print_row(
                    &[
                        id.name().into(),
                        bench.name().into(),
                        "OOM".into(),
                        "OOM".into(),
                        "-".into(),
                    ],
                    &widths,
                ),
            }
        }
    }
    println!("\nExpected: consistent speedups, largest where device-host transfer");
    println!("time dominates (the paper: host-device communication 'should be");
    println!("optimized to gain performance').");
}
