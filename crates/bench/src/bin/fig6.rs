//! Figure 6: breakdown of execution time of the D-IrGL variants (IEC) for
//! the large graphs on 64 P100 GPUs of Bridges.

use dirgl_bench::{print_breakdown, Args, BenchId, Breakdown, LoadedDataset, PartitionCache};
use dirgl_core::Variant;
use dirgl_gpusim::Platform;
use dirgl_graph::DatasetId;
use dirgl_partition::Policy;

fn main() {
    let args = Args::parse();
    let platform = Platform::bridges(64);
    println!("Figure 6: breakdown of D-IrGL variants (IEC), large graphs @ 64 GPUs");
    for id in DatasetId::LARGE {
        let ld = LoadedDataset::load(id, args.extra_scale);
        let mut cache = PartitionCache::new();
        for bench in BenchId::ALL {
            let rows: Vec<Breakdown> = Variant::all()
                .iter()
                .enumerate()
                .map(|(vi, variant)| Breakdown {
                    label: format!("Var{}", vi + 1),
                    result: dirgl_bench::run_dirgl(
                        bench,
                        &ld,
                        &mut cache,
                        &platform,
                        Policy::Iec,
                        *variant,
                    ),
                })
                .collect();
            print_breakdown(
                &format!("{} / {} @ 64 GPUs", bench.name(), id.name()),
                &rows,
            );
        }
    }
    println!("\nPaper shape: ALB (Var2+) cuts pagerank compute on clueweb12/uk14");
    println!("(huge max in-degree); UO (Var3) cuts volume; Var4 loses on bfs/uk14");
    println!("(redundant rounds on the high-diameter tail) but wins on clueweb12.");
}
