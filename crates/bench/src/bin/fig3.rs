//! Figure 3: strong scaling of the D-IrGL variants (Var1–Var4, IEC) and
//! Lux for the medium graphs on Bridges, 2–64 GPUs. Missing cells are OOM
//! (the paper's missing points).

use dirgl_bench::{
    bridges_gpu_counts, fmt_result, print_row, Args, BenchId, LoadedDataset, PartitionCache,
};
use dirgl_core::Variant;
use dirgl_gpusim::Platform;
use dirgl_graph::DatasetId;
use dirgl_partition::Policy;
use lux_sim::LuxRuntime;

fn main() {
    let args = Args::parse();
    let counts = bridges_gpu_counts(args.quick);
    let mut trace = dirgl_bench::cli::or_exit(args.open_trace(), Args::USAGE);
    println!("Figure 3: strong scaling (sec), D-IrGL variants (IEC) + Lux, medium graphs\n");

    for id in DatasetId::MEDIUM {
        let ld = LoadedDataset::load(id, args.extra_scale);
        let mut cache = PartitionCache::new();
        for bench in BenchId::ALL {
            println!("--- {} / {} ---", bench.name(), id.name());
            let widths = [8usize; 7];
            let mut header = vec!["series".to_string()];
            header.extend(counts.iter().map(|c| format!("{c} GPUs")));
            print_row(&header, &widths);
            for (vi, variant) in Variant::all().iter().enumerate() {
                let mut row = vec![format!("Var{}", vi + 1)];
                for &n in &counts {
                    let r = dirgl_bench::run_dirgl_maybe_traced(
                        bench,
                        &ld,
                        &mut cache,
                        &Platform::bridges(n),
                        Policy::Iec,
                        *variant,
                        &mut trace,
                        &format!("{}/{}/Var{}/{}gpus", bench.name(), id.name(), vi + 1, n),
                    );
                    row.push(fmt_result(&r));
                }
                print_row(&row, &widths);
            }
            // Lux runs cc and pagerank only.
            if matches!(bench, BenchId::Cc | BenchId::Pagerank) {
                let mut row = vec!["Lux".to_string()];
                for &n in &counts {
                    let lux = LuxRuntime::new(Platform::bridges(n), ld.ds.divisor);
                    let r = match bench {
                        BenchId::Cc => lux.run_cc(&ld.ds.graph),
                        BenchId::Pagerank => {
                            let rounds = dirgl_bench::run_dirgl(
                                BenchId::Pagerank,
                                &ld,
                                &mut cache,
                                &Platform::bridges(n),
                                Policy::Iec,
                                Variant::var3(),
                            )
                            .map(|o| o.report.rounds)
                            .unwrap_or(50);
                            lux.run_pagerank(&ld.ds.graph, rounds)
                        }
                        _ => unreachable!(),
                    };
                    row.push(fmt_result(&r));
                }
                print_row(&row, &widths);
            }
            println!();
        }
    }
    println!("Paper shape: Var1 always beats Lux; Lux stops scaling past 4 GPUs;");
    println!("Var3 generally beats Var2; Var4 is usually (not always) fastest.");
}
