//! Figure 7: strong scaling of D-IrGL (Var4) under the four partitioning
//! policies plus Lux, medium graphs on Bridges.

use dirgl_bench::{
    bridges_gpu_counts, fmt_result, print_row, Args, BenchId, LoadedDataset, PartitionCache,
};
use dirgl_core::Variant;
use dirgl_gpusim::Platform;
use dirgl_graph::DatasetId;
use dirgl_partition::Policy;
use lux_sim::LuxRuntime;

fn main() {
    let args = Args::parse();
    let counts = bridges_gpu_counts(args.quick);
    println!("Figure 7: strong scaling (sec), D-IrGL (Var4) by policy + Lux, medium graphs\n");
    for id in DatasetId::MEDIUM {
        let ld = LoadedDataset::load(id, args.extra_scale);
        let mut cache = PartitionCache::new();
        for bench in BenchId::ALL {
            println!("--- {} / {} ---", bench.name(), id.name());
            let widths = [8usize; 7];
            let mut header = vec!["series".to_string()];
            header.extend(counts.iter().map(|c| format!("{c} GPUs")));
            print_row(&header, &widths);
            for policy in [Policy::Hvc, Policy::Oec, Policy::Iec, Policy::Cvc] {
                let mut row = vec![policy.name().to_string()];
                for &n in &counts {
                    let r = dirgl_bench::run_dirgl(
                        bench,
                        &ld,
                        &mut cache,
                        &Platform::bridges(n),
                        policy,
                        Variant::var4(),
                    );
                    row.push(fmt_result(&r));
                }
                print_row(&row, &widths);
            }
            if matches!(bench, BenchId::Cc | BenchId::Pagerank) {
                let mut row = vec!["Lux".to_string()];
                for &n in &counts {
                    let lux = LuxRuntime::new(Platform::bridges(n), ld.ds.divisor);
                    let r = match bench {
                        BenchId::Cc => lux.run_cc(&ld.ds.graph),
                        BenchId::Pagerank => {
                            let rounds = dirgl_bench::run_dirgl(
                                BenchId::Pagerank,
                                &ld,
                                &mut cache,
                                &Platform::bridges(n),
                                Policy::Iec,
                                Variant::var3(),
                            )
                            .map(|o| o.report.rounds)
                            .unwrap_or(50);
                            lux.run_pagerank(&ld.ds.graph, rounds)
                        }
                        _ => unreachable!(),
                    };
                    row.push(fmt_result(&r));
                }
                print_row(&row, &widths);
            }
            println!();
        }
    }
    println!("Paper shape: CVC scales best for all benchmarks and inputs, and");
    println!("starts outperforming the other policies at 16 or more GPUs.");
}
