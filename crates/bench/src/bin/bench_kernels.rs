//! Per-layout kernel benchmark: runs bfs / cc / sssp / pagerank on
//! twitter50 (IEC, Var3, 16 devices) under every kernel layout —
//! insertion order, forced degree-sorted, forced segmented, and the
//! `Auto` skew heuristic — and writes the host wall-clock × simulated
//! time matrix to `BENCH_kernels.json`.
//!
//! Every permuted run is checked against the insertion-order baseline:
//! integer programs (bfs, cc, sssp) must be bit-identical, pagerank must
//! stay within float-reassociation tolerance when a layout is forced and
//! bit-identical under `Auto` (which leaves float programs on insertion
//! order; see `dirgl_core::layout`). The binary asserts the whole
//! `values_ok` column.
//!
//! ```sh
//! cargo run --release --bin bench_kernels -- [--scale N] [--out PATH]
//! ```

use std::time::Instant;

use dirgl_bench::cli::{or_exit, write_output, ArgStream, CliError};
use dirgl_bench::{BenchId, LoadedDataset, KCORE_K};
use dirgl_core::{LayoutChoice, LayoutKind, RunConfig, RunOutput, Runtime, Variant};
use dirgl_gpusim::Platform;
use dirgl_graph::DatasetId;
use dirgl_partition::Policy;

const DEVICES: u32 = 16;
const BENCHES: [BenchId; 4] = [BenchId::Bfs, BenchId::Cc, BenchId::Sssp, BenchId::Pagerank];

/// Max relative error allowed between a forced-layout pagerank run and
/// the insertion baseline. The permutation only reassociates the f32
/// residual sums, so the drift is tiny; 1e-3 is orders of magnitude
/// above anything observed while still catching real divergence.
const FLOAT_TOL: f64 = 1e-3;

const USAGE: &str = "usage: bench_kernels [--scale N] [--out PATH]";

struct Opts {
    extra_scale: u64,
    out_path: String,
}

fn try_parse(mut it: ArgStream) -> Result<Opts, CliError> {
    let mut o = Opts {
        extra_scale: 1,
        out_path: "BENCH_kernels.json".to_string(),
    };
    while let Some(a) = it.next_arg() {
        match a.as_str() {
            "--scale" => o.extra_scale = it.parsed("--scale", "a positive integer")?,
            "--out" => o.out_path = it.value("--out")?,
            other => return Err(CliError::unknown_arg(other)),
        }
    }
    Ok(o)
}

/// The benchmarked layout column order: baseline first, then the two
/// forced kinds, then the heuristic.
const CHOICES: [(LayoutChoice, &str); 4] = [
    (LayoutChoice::Insertion, "insertion"),
    (
        LayoutChoice::Force(LayoutKind::DegreeSorted),
        "degree_sorted",
    ),
    (LayoutChoice::Force(LayoutKind::Segmented), "segmented"),
    (LayoutChoice::Auto, "auto"),
];

fn run_bench(
    bench: BenchId,
    ld: &LoadedDataset,
    rt: &Runtime,
    prep: &dirgl_core::PreparedPartition,
) -> RunOutput {
    use dirgl_apps::{Bfs, Cc, PageRank, Sssp};
    let g = prep.graph();
    match bench {
        BenchId::Bfs => rt
            .runner(g, &Bfs::from_max_out_degree(&ld.ds.graph))
            .partition(prep)
            .execute(),
        BenchId::Cc => rt.runner(g, &Cc).partition(prep).execute(),
        BenchId::Sssp => rt
            .runner(g, &Sssp::from_max_out_degree(&ld.ds.graph))
            .partition(prep)
            .execute(),
        BenchId::Pagerank => rt.runner(g, &PageRank::new()).partition(prep).execute(),
        BenchId::Kcore => rt
            .runner(g, &dirgl_apps::KCore::new(KCORE_K))
            .partition(prep)
            .execute(),
    }
    .unwrap()
}

/// Compares a permuted run's values against the insertion baseline.
/// Returns `(ok, max_rel_err)`.
fn values_check(base: &[f64], got: &[f64], float_app: bool, forced: bool) -> (bool, f64) {
    if !float_app || !forced {
        let same = base.len() == got.len()
            && base
                .iter()
                .zip(got)
                .all(|(a, b)| a.to_bits() == b.to_bits());
        return (same, 0.0);
    }
    let mut max_rel = 0.0f64;
    for (a, b) in base.iter().zip(got) {
        let denom = a.abs().max(1e-12);
        max_rel = max_rel.max((a - b).abs() / denom);
    }
    (base.len() == got.len() && max_rel <= FLOAT_TOL, max_rel)
}

fn main() {
    let Opts {
        extra_scale,
        out_path,
    } = or_exit(try_parse(ArgStream::from_env()), USAGE);

    let ld = LoadedDataset::load(DatasetId::Twitter50, extra_scale);
    let platform = Platform::bridges(DEVICES);
    let mut cfg = RunConfig::new(Policy::Iec, Variant::var3());
    cfg.scale_divisor = ld.ds.divisor;
    let rt = Runtime::new(platform, cfg);

    // One base partition per graph view; each layout column clones it and
    // permutes, so every column runs on the identical partition.
    let base_directed = rt.prepare(&ld.ds.graph, false).unwrap();
    let base_sym = rt.prepare(&ld.ds.graph, true).unwrap();

    // Auto-selection census over the directed view: how many devices the
    // skew heuristic escalates, and the skew range it saw.
    let auto = base_directed.clone().with_layout(LayoutChoice::Auto);
    let (mut n_ins, mut n_deg, mut n_seg) = (DEVICES, 0u32, 0u32);
    let (mut skew_min, mut skew_max) = (f64::INFINITY, 0.0f64);
    if let Some(lp) = auto.layout_plan() {
        n_ins = 0;
        for l in &lp.layouts {
            skew_min = skew_min.min(l.skew);
            skew_max = skew_max.max(l.skew);
            match l.kind {
                LayoutKind::Insertion => n_ins += 1,
                LayoutKind::DegreeSorted => n_deg += 1,
                LayoutKind::Segmented => n_seg += 1,
            }
        }
    }

    println!("bench_kernels: twitter50/IEC/Var3 @ {DEVICES} devices, per-layout matrix");
    println!(
        "auto selection: {n_ins} insertion / {n_deg} degree_sorted / {n_seg} segmented, \
         skew {skew_min:.1}..{skew_max:.1}\n"
    );

    let mut rows = Vec::new();
    let mut all_ok = true;
    for bench in BENCHES {
        let base = if bench.symmetric() {
            &base_sym
        } else {
            &base_directed
        };
        let mut baseline: Option<RunOutput> = None;
        for (choice, name) in CHOICES {
            let prep = base.clone().with_layout(choice);
            // Untimed warm-up, then the timed pass: first contact pays
            // page-fault and allocator costs that are not the kernel's.
            run_bench(bench, &ld, &rt, &prep);
            let t0 = Instant::now();
            let out = run_bench(bench, &ld, &rt, &prep);
            let wall = t0.elapsed().as_secs_f64();

            let float_app = bench == BenchId::Pagerank;
            let forced = matches!(choice, LayoutChoice::Force(_));
            let (ok, max_rel) = match &baseline {
                None => (true, 0.0), // the insertion column is the baseline
                Some(b) => values_check(&b.values, &out.values, float_app, forced),
            };
            all_ok &= ok;
            let permuted = prep.layout_plan().is_some() && (forced || !float_app);
            println!(
                "{:>8} {name:>13}: wall {wall:.3}s, sim {:.2}s, rounds {}, \
                 permuted {permuted}, values_ok {ok}",
                bench.name(),
                out.report.total_time.as_secs_f64(),
                out.report.rounds,
            );
            rows.push(format!(
                "    {{\"bench\": \"{}\", \"layout\": \"{name}\", \"wall_s\": {wall:.6}, \
                 \"sim_s\": {:.6}, \"rounds\": {}, \"permuted\": {permuted}, \
                 \"values_ok\": {ok}, \"max_rel_err\": {max_rel:.3e}}}",
                bench.name(),
                out.report.total_time.as_secs_f64(),
                out.report.rounds,
            ));
            if baseline.is_none() {
                baseline = Some(out);
            }
        }
    }

    assert!(
        all_ok,
        "a permuted run diverged from its insertion-order baseline"
    );

    let json = format!(
        "{{\n  \"dataset\": \"twitter50\",\n  \"policy\": \"iec\",\n  \"variant\": \"Var3\",\n  \
         \"devices\": {DEVICES},\n  \"extra_scale\": {extra_scale},\n  \
         \"values_ok\": {all_ok},\n  \
         \"auto_kinds\": {{\"insertion\": {n_ins}, \"degree_sorted\": {n_deg}, \
         \"segmented\": {n_seg}}},\n  \
         \"skew_min\": {skew_min:.4},\n  \"skew_max\": {skew_max:.4},\n  \
         \"per\": [\n{}\n  ],\n  \
         \"note\": \"Host wall-clock and simulated time for each app under each kernel layout \
         (insertion baseline, forced degree-sorted, forced segmented, Auto skew heuristic) on \
         one shared partition. values_ok pins integer apps bit-identical to the insertion \
         baseline and pagerank within float-reassociation tolerance under forced layouts \
         (bit-identical under Auto, which keeps float programs on insertion order).\"\n}}\n",
        rows.join(",\n")
    );
    or_exit(write_output(&out_path, &json), USAGE);
    println!("\nwrote {out_path}");
}
