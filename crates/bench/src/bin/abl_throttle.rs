//! Ablation (paper §VII): dynamically throttling bulk-asynchronous
//! execution. Sweeps the minimum gap between local rounds for Var4 and
//! compares against unthrottled Var4 and synchronous Var3 — quantifying
//! the paper's closing recommendation that "control mechanisms need to be
//! developed to dynamically throttle bulk-asynchronous execution".

use dirgl_bench::{fmt_result, print_row, Args, BenchId, LoadedDataset, PartitionCache};
use dirgl_core::{RunConfig, Variant};
use dirgl_gpusim::Platform;
use dirgl_graph::DatasetId;
use dirgl_partition::Policy;

fn main() {
    let args = Args::parse();
    let platform = Platform::bridges(32);
    println!("Ablation: throttled BASP (Var4 + minimum local-round gap) @ 32 GPUs\n");
    let gaps_ms = [0.0f64, 1.0, 5.0, 20.0, 100.0];
    let widths = [10usize, 12, 9, 9, 9, 9, 9, 9];

    for id in [DatasetId::Uk07, DatasetId::Twitter50] {
        let ld = LoadedDataset::load(id, args.extra_scale);
        let mut cache = PartitionCache::new();
        for bench in [BenchId::Bfs, BenchId::Pagerank, BenchId::Sssp] {
            println!("--- {} / {} ---", bench.name(), id.name());
            let mut header = vec!["series".to_string(), "Var3(sync)".to_string()];
            header.extend(gaps_ms.iter().map(|g| format!("gap{g}ms")));
            print_row(&header, &widths);
            for policy in [Policy::Iec, Policy::Cvc] {
                let mut row = vec![policy.name().to_string()];
                let sync = dirgl_bench::run_dirgl(
                    bench,
                    &ld,
                    &mut cache,
                    &platform,
                    policy,
                    Variant::var3(),
                );
                row.push(fmt_result(&sync));
                for &gap in &gaps_ms {
                    let mut cfg = RunConfig::new(policy, Variant::var4());
                    cfg.basp_round_gap_secs = gap / 1e3;
                    let r = dirgl_bench::run_dirgl_cfg(bench, &ld, &mut cache, &platform, cfg);
                    row.push(fmt_result(&r));
                }
                print_row(&row, &widths);
            }
            println!();
        }
    }
    println!("Expected: a moderate gap removes BASP's redundant-round penalty on");
    println!("high-diameter/topology-driven cases while keeping its wait savings;");
    println!("a huge gap degenerates towards (slower-than-) synchronous execution.");
}
