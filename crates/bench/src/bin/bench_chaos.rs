//! Availability benchmark for the resident job-server under seeded chaos:
//! what fraction of an accepted mixed job stream the service still answers
//! — and at what latency — while links drop/duplicate/delay messages,
//! devices crash and straggle, memory pressure forces lane-width
//! degradation, deadlines churn and the queue saturates.
//!
//! One scenario matrix on twitter50/CVC/Var3 (BSP, checkpoints every 2
//! rounds when faults are armed), 4 devices:
//!
//! * `baseline` — no faults, the mixed 13-job stream.
//! * `link_chaos` — 5% drop + 2% duplicate + 1% delayed links.
//! * `crash_rejoin` / `crash_dead` — device 1 crashes at round 2 (with and
//!   without rejoin) under 5% drop, plus a 4× straggler window on device 2.
//! * `memory_pressure` — device capacities tightened (via the server's own
//!   footprint oracle) so wide batches must walk the degradation ladder.
//! * `deadline_churn` — half the stream queued behind a paused server with
//!   already-hopeless deadlines, the rest fresh.
//! * `saturation` — a 2-slot queue against a 12-job burst.
//!
//! Every scenario records availability = (completed + cache hits) /
//! accepted, the retry/degradation/shed counters, and p50/p99
//! client-observed latencies of the jobs that did complete. Counters must
//! reconcile (`accepted = completed + cache_hits + failed + expired +
//! rejected_gov + shut_down`) or the binary aborts.
//!
//! Writes `BENCH_chaos.json` (schema documented in EXPERIMENTS.md).
//!
//! ```sh
//! cargo run --release --bin bench_chaos -- [--scale N] [--seed N] [--out PATH]
//! ```

use std::time::{Duration, Instant};

use dirgl_bench::cli::{or_exit, write_output, ArgStream, CliError};
use dirgl_bench::LoadedDataset;
use dirgl_comm::FaultPlan;
use dirgl_core::{RunConfig, Variant};
use dirgl_gpusim::Platform;
use dirgl_graph::DatasetId;
use dirgl_partition::Policy;
use dirgl_serve::{JobRequest, JobServer, JobSpec, ServeConfig, ServerStats};

const DEVICES: u32 = 4;
const USAGE: &str = "usage: bench_chaos [--scale N] [--seed N] [--out PATH]";

struct Opts {
    extra_scale: u64,
    seed: u64,
    out_path: String,
}

fn try_parse(mut it: ArgStream) -> Result<Opts, CliError> {
    let mut o = Opts {
        extra_scale: 1,
        seed: 7,
        out_path: "BENCH_chaos.json".to_string(),
    };
    while let Some(a) = it.next_arg() {
        match a.as_str() {
            "--scale" => o.extra_scale = it.parsed("--scale", "a positive integer")?,
            "--seed" => o.seed = it.parsed("--seed", "a fault seed")?,
            "--out" => o.out_path = it.value("--out")?,
            other => return Err(CliError::unknown_arg(other)),
        }
    }
    Ok(o)
}

/// The mixed stream: two wide batches, singleton traversals (coalescible),
/// and the parameterless kinds. 13 distinct jobs.
fn stream(server: &JobServer) -> Vec<JobSpec> {
    let n = server.directed_view().num_vertices();
    let spread = |k: u32, of: u32| (k * n) / of;
    let mut jobs = vec![
        JobSpec::Bfs {
            sources: (0..16).map(|k| spread(k, 16)).collect(),
        },
        JobSpec::Sssp {
            sources: (0..16).map(|k| spread(k, 16)).collect(),
        },
        JobSpec::Pagerank,
        JobSpec::Cc,
        JobSpec::KCore { k: 4 },
    ];
    for k in 0..4 {
        jobs.push(JobSpec::bfs(spread(k, 4) + 1));
    }
    for k in 0..4 {
        jobs.push(JobSpec::sssp(spread(k, 4) + 1));
    }
    jobs
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

/// Submits every request from its own client thread, waits for all, and
/// returns (wall seconds, sorted latencies of *successful* jobs, refused
/// submissions).
fn run_stream(server: &JobServer, reqs: Vec<JobRequest>) -> (f64, Vec<f64>, u64) {
    let t0 = Instant::now();
    let outcomes: Vec<Option<f64>> = std::thread::scope(|s| {
        let handles: Vec<_> = reqs
            .into_iter()
            .map(|req| {
                s.spawn(move || {
                    let t = Instant::now();
                    match server.submit(req) {
                        Ok(h) => h.wait().ok().map(|_| t.elapsed().as_secs_f64()),
                        Err(_) => None,
                    }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall = t0.elapsed().as_secs_f64();
    let mut lats: Vec<f64> = outcomes.iter().filter_map(|o| *o).collect();
    let refused = outcomes.iter().filter(|o| o.is_none()).count() as u64;
    lats.sort_by(|a, b| a.partial_cmp(b).unwrap());
    (wall, lats, refused)
}

/// Aborts if the server's books do not balance.
fn reconcile(label: &str, s: &ServerStats) {
    assert_eq!(
        s.submitted,
        s.accepted + s.rejected_saturated + s.rejected_invalid,
        "{label}: submission counters do not reconcile: {s:?}"
    );
    assert_eq!(
        s.accepted,
        s.completed + s.cache_hits + s.failed + s.expired + s.rejected_gov + s.shut_down,
        "{label}: terminal counters do not reconcile: {s:?}"
    );
}

fn row(label: &str, wall: f64, lats: &[f64], s: &ServerStats) -> String {
    let served = s.completed + s.cache_hits;
    let availability = served as f64 / s.accepted.max(1) as f64;
    println!(
        "{label:>16}: availability {:.3} ({served}/{} accepted) | retries {} degraded {} \
         shed {} rejected {} expired {} | p50 {:.1}ms p99 {:.1}ms",
        availability,
        s.accepted,
        s.retries,
        s.degraded,
        s.shed,
        s.rejected_gov + s.rejected_saturated,
        s.expired,
        percentile(lats, 0.50) * 1e3,
        percentile(lats, 0.99) * 1e3,
    );
    format!(
        "    {{\"scenario\": \"{label}\", \"wall_s\": {wall:.6}, \
         \"accepted\": {}, \"completed\": {}, \"cache_hits\": {}, \"failed\": {}, \
         \"expired\": {}, \"rejected_gov\": {}, \"rejected_saturated\": {}, \
         \"shed\": {}, \"retries\": {}, \"degraded\": {}, \"shut_down\": {}, \
         \"availability\": {availability:.6}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}}}",
        s.accepted,
        s.completed,
        s.cache_hits,
        s.failed,
        s.expired,
        s.rejected_gov,
        s.rejected_saturated,
        s.shed,
        s.retries,
        s.degraded,
        s.shut_down,
        percentile(lats, 0.50) * 1e3,
        percentile(lats, 0.99) * 1e3,
    )
}

fn load(g: &dirgl_graph::Csr, platform: Platform, cfg: RunConfig, serve: ServeConfig) -> JobServer {
    JobServer::load(g, platform, cfg, serve).expect("server load failed")
}

fn main() {
    let Opts {
        extra_scale,
        seed,
        out_path,
    } = or_exit(try_parse(ArgStream::from_env()), USAGE);

    let ld = LoadedDataset::load(DatasetId::Twitter50, extra_scale);
    let g = &ld.ds.graph;
    let base_cfg = || RunConfig::new(Policy::Cvc, Variant::var3()).scale(ld.ds.divisor);
    let faulty_cfg = |plan: FaultPlan| base_cfg().with_faults(plan).with_checkpoints(2);
    let link_plan = || {
        FaultPlan::seeded(seed)
            .with_drop(0.05)
            .with_duplicate(0.02)
            .with_delay(0.01, 0.005)
    };
    println!(
        "bench_chaos: twitter50 (|V|={} |E|={}), CVC/Var3 @ {DEVICES} devices, seed {seed}\n",
        g.num_vertices(),
        g.num_edges()
    );

    let mut rows = Vec::new();

    // baseline / link_chaos / crash_rejoin / crash_dead: full stream.
    let storms: [(&str, Option<FaultPlan>); 4] = [
        ("baseline", None),
        ("link_chaos", Some(link_plan())),
        (
            "crash_rejoin",
            Some(
                link_plan()
                    .with_crash(1, 2, true)
                    .with_straggler(2, 1, 3, 4.0),
            ),
        ),
        (
            "crash_dead",
            Some(
                link_plan()
                    .with_crash(1, 2, false)
                    .with_straggler(2, 1, 3, 4.0),
            ),
        ),
    ];
    for (label, plan) in storms {
        let cfg = match plan {
            Some(p) => faulty_cfg(p),
            None => base_cfg(),
        };
        let server = load(g, Platform::bridges(DEVICES), cfg, ServeConfig::default());
        let reqs = stream(&server).into_iter().map(JobRequest::new).collect();
        let (wall, lats, _) = run_stream(&server, reqs);
        let stats = server.stats();
        reconcile(label, &stats);
        rows.push(row(label, wall, &lats, &stats));
        server.shutdown();
    }

    // memory_pressure: tighten capacities between the 4-wide and 16-wide
    // footprints of the wide sssp batch, so it must degrade to fit.
    {
        let probe = load(
            g,
            Platform::bridges(DEVICES),
            base_cfg(),
            ServeConfig::default(),
        );
        let wide = JobSpec::Sssp {
            sources: (0..16).map(|k| (k * g.num_vertices()) / 16).collect(),
        };
        let f16 = *probe.predict_footprint(&wide, 16).iter().max().unwrap();
        let f4 = *probe.predict_footprint(&wide, 4).iter().max().unwrap();
        probe.shutdown();
        let mut platform = Platform::bridges(DEVICES);
        for gpu in &mut platform.gpus {
            gpu.memory_bytes = (f4 + f16) / 2;
        }
        let server = load(g, platform, faulty_cfg(link_plan()), ServeConfig::default());
        let reqs = stream(&server).into_iter().map(JobRequest::new).collect();
        let (wall, lats, _) = run_stream(&server, reqs);
        let stats = server.stats();
        reconcile("memory_pressure", &stats);
        assert!(stats.degraded >= 1, "pressure scenario must degrade");
        rows.push(row("memory_pressure", wall, &lats, &stats));
        server.shutdown();
    }

    // deadline_churn: stale half queued behind a paused server with 1ms
    // deadlines, fresh half without; resume and drain.
    {
        let server = load(
            g,
            Platform::bridges(DEVICES),
            faulty_cfg(link_plan()),
            ServeConfig {
                workers: 1,
                start_paused: true,
                ..ServeConfig::default()
            },
        );
        let jobs = stream(&server);
        let (stale, fresh) = jobs.split_at(jobs.len() / 2);
        let t0 = Instant::now();
        let stale_handles: Vec<_> = stale
            .iter()
            .map(|j| {
                server
                    .submit(JobRequest::new(j.clone()).deadline(Duration::from_millis(1)))
                    .expect("queue fits the stream")
            })
            .collect();
        std::thread::sleep(Duration::from_millis(30));
        let reqs = fresh.iter().cloned().map(JobRequest::new).collect();
        server.resume();
        let (_, lats, _) = run_stream(&server, reqs);
        for h in &stale_handles {
            let _ = h.wait();
        }
        let wall = t0.elapsed().as_secs_f64();
        server.drain();
        let stats = server.stats();
        reconcile("deadline_churn", &stats);
        assert!(stats.expired >= 1, "stale deadlines must expire");
        rows.push(row("deadline_churn", wall, &lats, &stats));
        server.shutdown();
    }

    // saturation: a 2-slot queue against a 12-job burst while paused.
    {
        let server = load(
            g,
            Platform::bridges(DEVICES),
            faulty_cfg(link_plan()),
            ServeConfig {
                workers: 1,
                queue_capacity: 2,
                cache_capacity: 0,
                start_paused: true,
                ..ServeConfig::default()
            },
        );
        let reqs: Vec<JobRequest> = (1..=12)
            .map(|k| JobRequest::new(JobSpec::KCore { k }))
            .collect();
        let t0 = Instant::now();
        let handles: Vec<_> = reqs.into_iter().map(|r| server.submit(r)).collect();
        server.resume();
        let mut lats = Vec::new();
        for h in handles.into_iter().flatten() {
            if h.wait().is_ok() {
                lats.push(t0.elapsed().as_secs_f64());
            }
        }
        let wall = t0.elapsed().as_secs_f64();
        server.drain();
        lats.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let stats = server.stats();
        reconcile("saturation", &stats);
        assert!(stats.rejected_saturated >= 1, "the burst must overflow");
        rows.push(row("saturation", wall, &lats, &stats));
        server.shutdown();
    }

    let json = format!(
        "{{\n  \"dataset\": \"twitter50\",\n  \"policy\": \"cvc\",\n  \"variant\": \"Var3\",\n  \
         \"devices\": {DEVICES},\n  \"extra_scale\": {extra_scale},\n  \"seed\": {seed},\n  \
         \"stream\": \"bfs x16-wide + sssp x16-wide + pagerank + cc + kcore + 4 bfs + 4 sssp \
         singletons (13 jobs)\",\n  \
         \"scenarios\": [\n{}\n  ],\n  \
         \"note\": \"Seeded chaos against the resident JobServer: link faults \
         (drop/duplicate/delay), a device crash at round 2 (rejoin and dead modes) plus a 4x \
         straggler window, memory pressure via capacities tightened between the 4- and 16-wide \
         footprints of the widest batch (forcing the admission governor down the lane-width \
         ladder), deadline churn and queue saturation. availability = (completed + cache_hits) / \
         accepted; latencies are client-observed submit-to-result over successful jobs only. \
         Counters are asserted to reconcile in every scenario.\"\n}}\n",
        rows.join(",\n")
    );
    or_exit(write_output(&out_path, &json), USAGE);
    println!("\nwrote {out_path}");
}
