//! Out-of-core scale sweep: how deep can ingestion go under a fixed host
//! memory budget, plain vs streamed-compressed?
//!
//! Sweeps the uk07 web-crawl analogue from `--max-divisor` down to
//! `--min-divisor` in 2x steps (smaller divisor = bigger graph). At each
//! step both ingestion paths build a 4-device CVC partition:
//!
//! * **plain** — `DatasetId::load_scaled` (full edge list, raw CSR,
//!   weight randomization pass) followed by `Partition::build`;
//! * **compressed** — `DatasetId::load_scaled_compressed` (generator
//!   edges stream through a `--chunk-edges`-bounded external sort into a
//!   delta-gap varint [`CompressedCsr`], weights drawn inline) followed
//!   by the chunked `Partition::build_streamed`.
//!
//! The byte high-water mark of each path is measured exactly by the
//! shared [`TrackingAlloc`] and compared against `--budget-gb`: once a
//! path's ingest peak exceeds the budget it is retired from deeper
//! steps (its first over-budget step is still recorded). The sweep ends
//! when the compressed path is retired or `--min-divisor` is reached.
//! At every step where both paths fit, bfs runs end-to-end on both
//! partitions and the reports + vertex values must be byte-identical
//! (`values_ok` — the same contract `tests/scale_determinism.rs` pins).
//!
//! The committed `BENCH_scale.json` is gated by `bench_gate`: the
//! compressed path must reach at least one 2x step deeper than plain,
//! compress the web-crawl analogue at least 2x at the deepest step, and
//! its ingest peak must grow monotonically as the divisor shrinks.
//!
//! ```sh
//! cargo run --release --bin bench_scale -- [--max-divisor N] \
//!     [--min-divisor N] [--chunk-edges N] [--budget-gb X] [--out PATH]
//! ```
//!
//! [`CompressedCsr`]: dirgl_graph::CompressedCsr
//! [`TrackingAlloc`]: dirgl_bench::alloc::TrackingAlloc

use std::time::Instant;

use dirgl_apps::Bfs;
use dirgl_bench::alloc::{self, TrackingAlloc};
use dirgl_bench::cli::{or_exit, write_output, ArgStream, CliError};
use dirgl_core::{PreparedPartition, RunConfig, Runtime, Variant};
use dirgl_gpusim::Platform;
use dirgl_graph::{Csr, DatasetId};
use dirgl_partition::{Partition, Policy};

#[global_allocator]
static GLOBAL: TrackingAlloc = TrackingAlloc;

const DATASET: DatasetId = DatasetId::Uk07;
const DEVICES: u32 = 4;
const SEED: u64 = 0x5EED;

const USAGE: &str = "usage: bench_scale [--max-divisor N] [--min-divisor N] \
                     [--chunk-edges N] [--budget-gb X] [--out PATH]";

struct Opts {
    max_divisor: u64,
    min_divisor: u64,
    chunk_edges: usize,
    budget_gb: f64,
    out_path: String,
}

fn try_parse(mut it: ArgStream) -> Result<Opts, CliError> {
    let mut o = Opts {
        max_divisor: 1024,
        min_divisor: 1,
        chunk_edges: 1 << 20,
        budget_gb: 0.1,
        out_path: "BENCH_scale.json".to_string(),
    };
    while let Some(a) = it.next_arg() {
        match a.as_str() {
            "--max-divisor" => o.max_divisor = it.parsed("--max-divisor", "a positive integer")?,
            "--min-divisor" => o.min_divisor = it.parsed("--min-divisor", "a positive integer")?,
            "--chunk-edges" => o.chunk_edges = it.parsed("--chunk-edges", "a positive integer")?,
            "--budget-gb" => o.budget_gb = it.parsed("--budget-gb", "a number of gigabytes")?,
            "--out" => o.out_path = it.value("--out")?,
            other => return Err(CliError::unknown_arg(other)),
        }
    }
    if o.max_divisor < o.min_divisor || o.min_divisor == 0 {
        return Err(CliError::new(format!(
            "--max-divisor {} must be >= --min-divisor {} >= 1",
            o.max_divisor, o.min_divisor
        )));
    }
    if o.chunk_edges == 0 {
        return Err(CliError::new("--chunk-edges must be >= 1"));
    }
    Ok(o)
}

/// One ingestion measurement: partition in hand, exact byte high-water
/// mark of the build, and its wall clock.
struct Ingest {
    part: Partition,
    graph: Option<Csr>,
    peak_bytes: u64,
    wall_s: f64,
    /// (vertices, edges, raw-CSR byte equivalent, compressed bytes) of
    /// the global graph — reported by the compressed path only.
    stats: Option<(u32, u64, u64, u64)>,
}

/// Plain path: full in-memory analogue, then the in-memory partitioner.
fn ingest_plain(extra: u64) -> Ingest {
    alloc::reset_peak();
    let base = alloc::peak_bytes();
    let t0 = Instant::now();
    let ds = DATASET.load_scaled(extra);
    let part = Partition::build(&ds.graph, Policy::Cvc, DEVICES, SEED);
    Ingest {
        wall_s: t0.elapsed().as_secs_f64(),
        peak_bytes: alloc::peak_bytes() - base,
        graph: Some(ds.graph),
        part,
        stats: None,
    }
}

/// Compressed path: streamed external-sort ingest into a delta-gap
/// varint CSR, then the chunked streaming partitioner. Neither the full
/// edge list nor the global raw CSR is ever resident.
fn ingest_compressed(extra: u64, chunk_edges: usize) -> Ingest {
    alloc::reset_peak();
    let base = alloc::peak_bytes();
    let t0 = Instant::now();
    let ds = DATASET.load_scaled_compressed(extra, chunk_edges);
    let part = Partition::build_streamed(&ds.graph, Policy::Cvc, DEVICES, SEED);
    let wall_s = t0.elapsed().as_secs_f64();
    let peak_bytes = alloc::peak_bytes() - base;
    let (n, m) = (ds.graph.num_vertices(), ds.graph.num_edges());
    // Raw-CSR byte equivalent (offsets + targets + weights), without
    // materializing it — mirrors `Csr::bytes`.
    let per_edge = if ds.graph.is_weighted() { 8 } else { 4 };
    let raw_bytes = 8 * (n as u64 + 1) + per_edge * m;
    Ingest {
        wall_s,
        peak_bytes,
        graph: None,
        part,
        stats: Some((n, m, raw_bytes, ds.graph.memory_bytes())),
    }
}

/// Runs bfs on a prepared partition; returns (debug report, value bits,
/// wall seconds). The run exists to pin the byte-identity contract and
/// time the engine, so the scale divisor stays 1 — projecting the
/// clamped small analogues up to paper-equivalent footprints would only
/// trip the simulated GPU capacity, not tell us anything about ingest.
fn run_bfs(prep: &PreparedPartition) -> (String, Vec<u64>, f64) {
    let mut cfg = RunConfig::new(Policy::Cvc, Variant::var1());
    cfg.seed = SEED;
    let rt = Runtime::new(Platform::bridges(DEVICES), cfg);
    let prog = Bfs::from_max_out_degree(prep.graph());
    let t0 = Instant::now();
    let out = rt.job(prep, &prog).execute().unwrap();
    let wall = t0.elapsed().as_secs_f64();
    let bits = out.values.iter().map(|v| v.to_bits()).collect();
    (format!("{:?}", out.report), bits, wall)
}

fn fmt_mb(bytes: u64) -> String {
    format!("{:.1}MB", bytes as f64 / 1e6)
}

fn main() {
    let Opts {
        max_divisor,
        min_divisor,
        chunk_edges,
        budget_gb,
        out_path,
    } = or_exit(try_parse(ArgStream::from_env()), USAGE);
    let budget_bytes = (budget_gb * 1e9) as u64;

    println!(
        "bench_scale: {}/CVC @ {DEVICES} devices, divisors {max_divisor}..{min_divisor}, \
         budget {budget_gb}GB, chunk {chunk_edges} edges\n",
        DATASET.name()
    );

    let mut rows = Vec::new();
    let mut plain_alive = true;
    let mut all_values_ok = true;
    // Deepest (smallest) divisor each path completed within budget.
    let (mut plain_deepest, mut compressed_deepest) = (None, None);
    let mut ratio_deepest = 0.0f64;

    let mut divisor = max_divisor;
    loop {
        let comp = ingest_compressed(divisor, chunk_edges);
        let (n, m, raw_bytes, compressed_bytes) = comp.stats.unwrap();
        let ratio = raw_bytes as f64 / compressed_bytes as f64;
        let comp_ok = comp.peak_bytes <= budget_bytes;
        if comp_ok {
            compressed_deepest = Some(divisor);
            ratio_deepest = ratio;
        }

        let plain = if plain_alive {
            Some(ingest_plain(divisor))
        } else {
            None
        };
        let plain_ok = plain
            .as_ref()
            .map(|p| p.peak_bytes <= budget_bytes)
            .unwrap_or(false);
        if plain_ok {
            plain_deepest = Some(divisor);
        }

        let mut row = format!(
            "    {{\"extra_divisor\": {divisor}, \"vertices\": {n}, \"edges\": {m}, \
             \"raw_bytes\": {raw_bytes}, \"compressed_bytes\": {compressed_bytes}, \
             \"compression_ratio\": {ratio:.4}, \
             \"compressed\": {{\"ingest_peak_bytes\": {}, \"build_wall_s\": {:.6}, \
             \"within_budget\": {comp_ok}}}",
            comp.peak_bytes, comp.wall_s
        );
        print!(
            "/{divisor:>5}: {n:>8} v {m:>10} e  ratio {ratio:>5.2}x  \
             compressed {:>8} ({})",
            fmt_mb(comp.peak_bytes),
            if comp_ok { "fits" } else { "over budget" }
        );

        if let Some(p) = &plain {
            row.push_str(&format!(
                ", \"plain\": {{\"ingest_peak_bytes\": {}, \"build_wall_s\": {:.6}, \
                 \"within_budget\": {plain_ok}}}",
                p.peak_bytes, p.wall_s
            ));
            print!(
                "  plain {:>8} ({})",
                fmt_mb(p.peak_bytes),
                if plain_ok { "fits" } else { "over budget" }
            );

            // Both partitions in hand: bfs end-to-end must be
            // byte-identical (report and vertex values).
            let g = p.graph.clone().unwrap();
            let prep_plain = PreparedPartition::from_partition(g.clone(), p.part.clone());
            let prep_comp = PreparedPartition::from_partition(g, comp.part.clone());
            let (ra, va, wall_plain) = run_bfs(&prep_plain);
            let (rb, vb, wall_comp) = run_bfs(&prep_comp);
            let values_ok = ra == rb && va == vb;
            all_values_ok &= values_ok;
            row.push_str(&format!(
                ", \"run_plain_s\": {wall_plain:.6}, \"run_compressed_s\": {wall_comp:.6}, \
                 \"values_ok\": {values_ok}"
            ));
            print!("  bfs identical: {values_ok}");
        }
        row.push('}');
        rows.push(row);
        println!();

        plain_alive = plain_ok;
        if !comp_ok || divisor <= min_divisor {
            break;
        }
        divisor /= 2;
    }

    assert!(
        all_values_ok,
        "compressed-streamed ingestion diverged from the plain path"
    );

    // How many 2x steps deeper the compressed path reached. When plain
    // never fit at all, credit the whole compressed range.
    let steps_deeper = match (plain_deepest, compressed_deepest) {
        (Some(p), Some(c)) => (p / c.max(1)).max(1).ilog2() as u64,
        (None, Some(c)) => (max_divisor / c.max(1)).max(1).ilog2() as u64 + 1,
        _ => 0,
    };
    println!(
        "\nplain deepest /{}, compressed deepest /{} ({} step(s) deeper), \
         deepest compression {ratio_deepest:.2}x",
        plain_deepest.map_or("-".into(), |d: u64| d.to_string()),
        compressed_deepest.map_or("-".into(), |d: u64| d.to_string()),
        steps_deeper
    );

    let json = format!(
        "{{\n  \"dataset\": \"{}\",\n  \"policy\": \"cvc\",\n  \"devices\": {DEVICES},\n  \
         \"max_divisor\": {max_divisor},\n  \"min_divisor\": {min_divisor},\n  \
         \"chunk_edges\": {chunk_edges},\n  \"budget_bytes\": {budget_bytes},\n  \
         \"plain_deepest_divisor\": {},\n  \"compressed_deepest_divisor\": {},\n  \
         \"compressed_steps_deeper\": {steps_deeper},\n  \
         \"compression_ratio_deepest\": {ratio_deepest:.4},\n  \
         \"steps\": [\n{}\n  ],\n  \
         \"note\": \"Ingest-to-partition sweep on the uk07 web-crawl analogue, extra divisor \
         halving from max_divisor (smaller divisor = bigger graph). peak bytes are the exact \
         allocator high-water mark of each ingestion path (generate + partition into 4 CVC \
         local graphs); a path is retired once its peak exceeds budget_bytes. values_ok pins \
         byte-identical bfs reports + vertex values between the plain and streamed-compressed \
         partitions wherever both fit.\"\n}}\n",
        DATASET.name(),
        plain_deepest.map_or("null".into(), |d: u64| d.to_string()),
        compressed_deepest.map_or("null".into(), |d: u64| d.to_string()),
        rows.join(",\n")
    );
    or_exit(write_output(&out_path, &json), USAGE);
    println!("wrote {out_path}");
}
