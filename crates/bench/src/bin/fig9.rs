//! Figure 9: breakdown of execution time of D-IrGL (Var4) under the four
//! partitioning policies for the large graphs on 64 P100 GPUs of Bridges
//! (with OOM gaps, as in the paper).

use dirgl_bench::{print_breakdown, Args, BenchId, Breakdown, LoadedDataset, PartitionCache};
use dirgl_core::Variant;
use dirgl_gpusim::Platform;
use dirgl_graph::DatasetId;
use dirgl_partition::Policy;

fn main() {
    let args = Args::parse();
    let platform = Platform::bridges(64);
    println!("Figure 9: breakdown of D-IrGL (Var4) by policy, large graphs @ 64 GPUs");
    for id in DatasetId::LARGE {
        let ld = LoadedDataset::load(id, args.extra_scale);
        let mut cache = PartitionCache::new();
        for bench in BenchId::ALL {
            let rows: Vec<Breakdown> = [Policy::Hvc, Policy::Oec, Policy::Iec, Policy::Cvc]
                .iter()
                .map(|&policy| Breakdown {
                    label: policy.name().into(),
                    result: dirgl_bench::run_dirgl(
                        bench,
                        &ld,
                        &mut cache,
                        &platform,
                        policy,
                        Variant::var4(),
                    ),
                })
                .collect();
            print_breakdown(
                &format!("{} / {} @ 64 GPUs", bench.name(), id.name()),
                &rows,
            );
        }
    }
    println!("\nPaper shape: statically imbalanced policies OOM on the largest");
    println!("inputs even though total GPU memory would suffice; CVC communicates");
    println!("fastest despite higher volume.");
}
