//! Table I: inputs and their key properties — prints the published
//! properties next to the generated analogue's measured shape, validating
//! that every analogue preserves |E|/|V|, degree skew and diameter.

use dirgl_bench::{print_row, Args};
use dirgl_graph::{DatasetId, GraphStats};

fn main() {
    let args = Args::parse();
    println!("Table I: inputs and their key properties");
    println!("(paper value -> generated analogue at 1/{{divisor}} scale)\n");
    let widths = [12usize, 9, 22, 22, 10, 20, 20, 18];
    print_row(
        &[
            "input",
            "divisor",
            "|V|",
            "|E|",
            "|E|/|V|",
            "max Dout",
            "max Din",
            "approx diam",
        ]
        .map(String::from),
        &widths,
    );
    for id in DatasetId::ALL {
        let p = id.paper_props();
        let ds = id.load_scaled(args.extra_scale);
        let st = GraphStats::compute(&ds.graph);
        print_row(
            &[
                id.name().to_string(),
                ds.divisor.to_string(),
                format!("{:.1}M->{}", p.num_vertices as f64 / 1e6, st.num_vertices),
                format!("{:.0}M->{}", p.num_edges as f64 / 1e6, st.num_edges),
                format!(
                    "{:.0}->{:.0}",
                    p.num_edges as f64 / p.num_vertices as f64,
                    st.avg_degree
                ),
                format!("{}->{}", p.max_out_degree, st.max_out_degree),
                format!("{}->{}", p.max_in_degree, st.max_in_degree),
                format!("{}->{}", p.approx_diameter, st.approx_diameter),
            ],
            &widths,
        );
    }
    println!("\nDegrees scale by the divisor (clamped at 64); the diameter is");
    println!("kept at its paper value because round counts depend on it.");
}
