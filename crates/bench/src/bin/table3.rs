//! Table III: maximum memory usage (GB) across the 6 GPUs of Tuxedo for cc
//! (Lux uses a static memory allocation, so its column is constant).

use dirgl_bench::{print_row, Args, BenchId, LoadedDataset, PartitionCache};
use dirgl_core::Variant;
use dirgl_gpusim::Platform;
use dirgl_graph::DatasetId;
use dirgl_partition::Policy;
use lux_sim::LuxRuntime;
use singlehost_sim::{GrouteSim, GunrockSim};

fn gb(bytes: u64) -> String {
    format!("{:.2}", bytes as f64 / 1e9)
}

fn main() {
    let args = Args::parse();
    println!("Table III: max memory usage (GB) across 6 GPUs for cc on Tuxedo\n");
    let datasets: Vec<LoadedDataset> = DatasetId::SMALL
        .iter()
        .map(|&id| LoadedDataset::load(id, args.extra_scale))
        .collect();
    let platform = Platform::tuxedo();

    let widths = [10usize, 12, 12, 12];
    let mut header = vec!["system".to_string()];
    header.extend(datasets.iter().map(|ld| ld.ds.id.name().to_string()));
    print_row(&header, &widths);

    let mut rows: Vec<(String, Vec<String>)> = Vec::new();

    let mut gunrock = Vec::new();
    let mut groute = Vec::new();
    let mut lux = Vec::new();
    let mut dirgl = Vec::new();
    for ld in &datasets {
        gunrock.push(
            match GunrockSim::new(platform.clone(), ld.ds.divisor).run_cc(&ld.ds.graph) {
                Ok(o) => gb(o.report.max_memory()),
                Err(_) => "OOM".into(),
            },
        );
        groute.push(
            match GrouteSim::new(platform.clone(), ld.ds.divisor).run_cc(&ld.ds.graph) {
                Ok(o) => gb(o.report.max_memory()),
                Err(_) => "OOM".into(),
            },
        );
        lux.push(
            match LuxRuntime::new(platform.clone(), ld.ds.divisor).run_cc(&ld.ds.graph) {
                Ok(o) => gb(o.report.max_memory()),
                Err(_) => "OOM".into(),
            },
        );
        let mut cache = PartitionCache::new();
        dirgl.push(
            match dirgl_bench::run_dirgl(
                BenchId::Cc,
                ld,
                &mut cache,
                &platform,
                Policy::Cvc,
                Variant::var4(),
            ) {
                Ok(o) => gb(o.report.max_memory()),
                Err(_) => "OOM".into(),
            },
        );
    }
    rows.push(("Gunrock".into(), gunrock));
    rows.push(("Groute".into(), groute));
    rows.push(("Lux".into(), lux));
    rows.push(("D-IrGL".into(), dirgl));
    for (name, cells) in rows {
        let mut row = vec![name];
        row.extend(cells);
        print_row(&row, &widths);
    }
    println!("\nPaper shape: Lux's column is a constant static reservation (5.85 GB);");
    println!("D-IrGL uses the least memory; Gunrock's random partitioning replicates");
    println!("the most among the working-set-sized frameworks.");
}
