//! Multi-source batching benchmark: how many bfs sources per second does
//! the K-lane bit-matrix backend sustain versus running the same sources
//! as serial scalar jobs?
//!
//! One partition is built and reused; then for K ∈ {1, 8, 64} the same
//! source set runs twice — `Backend::Scalar` (K one-source engine runs,
//! the baseline) and `Backend::Lanes` (one engine pass advancing all K
//! frontiers). Every lane is asserted byte-identical to its scalar run
//! (`identical_reports`), so the speedup is never bought with divergent
//! answers.
//!
//! The headline sources/sec and the asserted ≥4× floor are in
//! *paper-equivalent simulated time* (the unit every BENCH file in this
//! repo reports, and deterministic run to run); host wall times ride
//! along for reference. The simulated win is the MS-BFS claim itself:
//! a vertex on many lanes' frontiers is scanned once per round, not
//! once per lane, so one batched pass costs about one scalar pass.
//!
//! ```sh
//! cargo run --release --bin bench_batch -- [--scale N] [--gpus N] [--out PATH]
//! ```

use std::time::Instant;

use dirgl_bench::cli::{or_exit, write_output, ArgStream, CliError};
use dirgl_bench::{run_dirgl_batch, BenchId, LoadedDataset, PartitionCache};
use dirgl_core::{Backend, MultiRunOutput, RunConfig, Variant};
use dirgl_gpusim::Platform;
use dirgl_graph::DatasetId;
use dirgl_partition::Policy;

const USAGE: &str = "usage: bench_batch [--scale N] [--gpus N] [--out PATH]";
const LANE_COUNTS: [usize; 3] = [1, 8, 64];

struct Opts {
    extra_scale: u64,
    gpus: u32,
    out_path: String,
}

fn try_parse(mut it: ArgStream) -> Result<Opts, CliError> {
    let mut o = Opts {
        extra_scale: 1,
        gpus: 4,
        out_path: "BENCH_batch.json".to_string(),
    };
    while let Some(a) = it.next_arg() {
        match a.as_str() {
            "--scale" => o.extra_scale = it.parsed("--scale", "a positive integer")?,
            "--gpus" => o.gpus = it.parsed("--gpus", "a positive integer")?,
            "--out" => o.out_path = it.value("--out")?,
            other => return Err(CliError::unknown_arg(other)),
        }
    }
    Ok(o)
}

/// K distinct sources spread across the id space, first one the paper's
/// max-out-degree convention.
fn spread_sources(n: u32, base: u32, k: usize) -> Vec<u32> {
    assert!(n as usize > k, "graph too small for {k} distinct sources");
    let step = n / k as u32 + 1;
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::with_capacity(k);
    let mut s = base % n;
    while out.len() < k {
        while !seen.insert(s) {
            s = (s + 1) % n;
        }
        out.push(s);
        s = (s + step) % n;
    }
    out
}

/// Aggregate paper-equivalent execution time across a run's engine
/// passes.
fn sim_total(out: &MultiRunOutput) -> f64 {
    out.engine_reports
        .iter()
        .map(|r| r.total_time.as_secs_f64())
        .sum()
}

/// Every lane byte-identical between the two backends: same source
/// labels, same value bits, same digests.
fn identical(lanes: &MultiRunOutput, scalar: &MultiRunOutput) -> bool {
    lanes.lanes.len() == scalar.lanes.len()
        && lanes.lanes.iter().zip(&scalar.lanes).all(|(l, s)| {
            l.source == s.source
                && l.summary == s.summary
                && l.values.len() == s.values.len()
                && l.values
                    .iter()
                    .zip(&s.values)
                    .all(|(a, b)| a.to_bits() == b.to_bits())
        })
}

fn main() {
    let Opts {
        extra_scale,
        gpus,
        out_path,
    } = or_exit(try_parse(ArgStream::from_env()), USAGE);

    let ld = LoadedDataset::load(DatasetId::Indochina04, extra_scale);
    let g = &ld.ds.graph;
    let n = g.num_vertices();
    let base = g.max_out_degree_vertex();
    println!(
        "bench_batch: indochina04 (|V|={} |E|={}), bfs, CVC/Var3 @ {gpus} GPUs\n",
        n,
        g.num_edges()
    );

    let platform = Platform::bridges(gpus);
    let cfg = || RunConfig::new(Policy::Cvc, Variant::var3());
    let mut cache = PartitionCache::new();

    // Warm the partition cache so neither timed pass pays the build.
    run_dirgl_batch(
        BenchId::Bfs,
        &ld,
        &mut cache,
        &platform,
        cfg(),
        &[base],
        Backend::Scalar,
    )
    .expect("warmup failed");

    let mut rows = Vec::new();
    let mut speedup_64 = 0.0f64;
    for k in LANE_COUNTS {
        let sources = spread_sources(n, base, k);

        let t = Instant::now();
        let scalar = run_dirgl_batch(
            BenchId::Bfs,
            &ld,
            &mut cache,
            &platform,
            cfg(),
            &sources,
            Backend::Scalar,
        )
        .expect("scalar batch failed");
        let scalar_s = t.elapsed().as_secs_f64();

        let t = Instant::now();
        let lanes = run_dirgl_batch(
            BenchId::Bfs,
            &ld,
            &mut cache,
            &platform,
            cfg(),
            &sources,
            Backend::Lanes,
        )
        .expect("lanes batch failed");
        let lanes_s = t.elapsed().as_secs_f64();

        let same = identical(&lanes, &scalar);
        assert!(same, "K={k}: a lane diverged from its scalar run");
        assert_eq!(
            scalar.engine_reports.len(),
            k,
            "scalar runs once per source"
        );
        assert_eq!(
            lanes.engine_reports.len(),
            k.div_ceil(64),
            "lanes chunk by 64"
        );

        let scalar_sim = sim_total(&scalar);
        let lanes_sim = sim_total(&lanes);
        let scalar_sps = k as f64 / scalar_sim;
        let lanes_sps = k as f64 / lanes_sim;
        let speedup = lanes_sps / scalar_sps;
        let host_speedup = scalar_s / lanes_s;
        if k == 64 {
            speedup_64 = speedup;
        }
        println!(
            "K={k:>2}: scalar {scalar_sim:>8.3}s ({scalar_sps:>7.2} src/s) | lanes \
             {lanes_sim:>8.3}s ({lanes_sps:>7.2} src/s) | speedup {speedup:>6.2}x \
             (host {host_speedup:.2}x) | identical",
        );
        rows.push(format!(
            "    {{\"k\": {k}, \"scalar_sim_s\": {scalar_sim:.6}, \"lanes_sim_s\": {lanes_sim:.6}, \
             \"scalar_sources_per_s\": {scalar_sps:.3}, \"lanes_sources_per_s\": {lanes_sps:.3}, \
             \"speedup\": {speedup:.3}, \"scalar_host_s\": {scalar_s:.6}, \
             \"lanes_host_s\": {lanes_s:.6}, \"host_speedup\": {host_speedup:.3}, \
             \"engine_passes\": {}, \"identical_reports\": {same}}}",
            lanes.engine_reports.len(),
        ));
    }

    println!("\nK=64 speedup: {speedup_64:.2}x (acceptance floor: 4x)");
    assert!(
        speedup_64 >= 4.0,
        "K=64 batched bfs must sustain >= 4x the serial scalar sources/sec, got {speedup_64:.2}x"
    );

    let json = format!(
        "{{\n  \"dataset\": \"indochina04\",\n  \"benchmark\": \"bfs\",\n  \"policy\": \"cvc\",\n  \
         \"variant\": \"Var3\",\n  \"devices\": {gpus},\n  \"extra_scale\": {extra_scale},\n  \
         \"runs\": [\n{}\n  ],\n  \
         \"note\": \"Same prepared partition for every run (warmed before timing). Scalar = one \
         engine pass per source (the serial baseline); lanes = K sources packed into 64-lane \
         bit-matrix frontiers, one engine pass per 64-lane chunk. identical_reports asserts every \
         lane's values are byte-identical to its scalar single-source run. The headline \
         sources/sec and speedup are paper-equivalent simulated time (deterministic); *_host_s \
         are host wall clock, for reference.\"\n}}\n",
        rows.join(",\n")
    );
    or_exit(write_output(&out_path, &json), USAGE);
    println!("wrote {out_path}");
}
