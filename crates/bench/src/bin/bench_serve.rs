//! Throughput/latency benchmark for the resident job-server: one
//! [`JobServer`] loads twitter50 once, then a mixed matrix of 16 distinct
//! jobs (bfs/sssp/bc from spread-out sources, pagerank, cc, kcore) is
//! submitted by concurrent clients at server concurrency 1, 4 and 16 —
//! first cold (every job executes), then resubmitted verbatim (every job
//! a cache hit). Client-observed latency (submit → result, queueing
//! included) and jobs/sec go to `BENCH_serve.json`.
//!
//! ```sh
//! cargo run --release --bin bench_serve -- [--scale N] [--gpus N] [--out PATH]
//! ```

use std::time::Instant;

use dirgl_bench::cli::{or_exit, write_output, ArgStream, CliError};
use dirgl_bench::LoadedDataset;
use dirgl_core::RunConfig;
use dirgl_gpusim::Platform;
use dirgl_graph::DatasetId;
use dirgl_partition::Policy;
use dirgl_serve::{JobServer, JobSpec, ServeConfig};

const USAGE: &str = "usage: bench_serve [--scale N] [--gpus N] [--out PATH]";
const CONCURRENCY: [usize; 3] = [1, 4, 16];

struct Opts {
    extra_scale: u64,
    gpus: u32,
    out_path: String,
}

fn try_parse(mut it: ArgStream) -> Result<Opts, CliError> {
    let mut o = Opts {
        extra_scale: 1,
        gpus: 4,
        out_path: "BENCH_serve.json".to_string(),
    };
    while let Some(a) = it.next_arg() {
        match a.as_str() {
            "--scale" => o.extra_scale = it.parsed("--scale", "a positive integer")?,
            "--gpus" => o.gpus = it.parsed("--gpus", "a positive integer")?,
            "--out" => o.out_path = it.value("--out")?,
            other => return Err(CliError::unknown_arg(other)),
        }
    }
    Ok(o)
}

/// The mixed 16-job matrix: traversals from sources spread across the id
/// space (the first is the paper's max-out-degree convention), plus the
/// source-free programs.
fn job_matrix(server: &JobServer) -> Vec<JobSpec> {
    let n = server.directed_view().num_vertices();
    let base = server.default_source().expect("non-empty graph");
    let spread = |k: u32| (base.wrapping_add(k.wrapping_mul(n / 8 + 1))) % n;
    let mut jobs = Vec::new();
    for k in 0..6 {
        jobs.push(JobSpec::bfs(spread(k)));
    }
    for k in 0..4 {
        jobs.push(JobSpec::sssp(spread(k)));
    }
    for k in 0..2 {
        jobs.push(JobSpec::bc(spread(k)));
    }
    jobs.push(JobSpec::Pagerank);
    jobs.push(JobSpec::Cc);
    jobs.push(JobSpec::KCore { k: 4 });
    jobs.push(JobSpec::KCore { k: 8 });
    jobs
}

/// One pass: every job submitted by its own client thread; returns
/// (wall seconds, sorted per-job latencies in seconds).
fn run_pass(server: &JobServer, jobs: &[JobSpec]) -> (f64, Vec<f64>) {
    let t0 = Instant::now();
    let mut lats: Vec<f64> = std::thread::scope(|s| {
        let handles: Vec<_> = jobs
            .iter()
            .map(|spec| {
                let spec = spec.clone();
                s.spawn(move || {
                    let t = Instant::now();
                    let h = server.submit_spec(spec).expect("submit refused");
                    h.wait().expect("job failed");
                    t.elapsed().as_secs_f64()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall = t0.elapsed().as_secs_f64();
    lats.sort_by(|a, b| a.partial_cmp(b).unwrap());
    (wall, lats)
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    let idx = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

fn pass_json(label: &str, wall: f64, lats: &[f64]) -> String {
    format!(
        "\"{label}\": {{\"wall_s\": {wall:.6}, \"jobs_per_s\": {:.3}, \
         \"p50_ms\": {:.3}, \"p99_ms\": {:.3}}}",
        lats.len() as f64 / wall,
        percentile(lats, 0.50) * 1e3,
        percentile(lats, 0.99) * 1e3,
    )
}

fn main() {
    let Opts {
        extra_scale,
        gpus,
        out_path,
    } = or_exit(try_parse(ArgStream::from_env()), USAGE);

    let ld = LoadedDataset::load(DatasetId::Twitter50, extra_scale);
    let g = &ld.ds.graph;
    println!(
        "bench_serve: twitter50 (|V|={} |E|={}), CVC/Var4 @ {gpus} GPUs\n",
        g.num_vertices(),
        g.num_edges()
    );

    let mut rows = Vec::new();
    for conc in CONCURRENCY {
        let serve_cfg = ServeConfig {
            workers: conc,
            queue_capacity: 256,
            cache_capacity: 128,
            start_paused: false,
            ..ServeConfig::default()
        };
        let t_load = Instant::now();
        let server = JobServer::load(
            g,
            Platform::bridges(gpus),
            RunConfig::var4(Policy::Cvc).scale(ld.ds.divisor),
            serve_cfg,
        )
        .expect("load failed");
        let load_s = t_load.elapsed().as_secs_f64();
        let jobs = job_matrix(&server);

        let (cold_wall, cold_lats) = run_pass(&server, &jobs);
        let after_cold = server.stats();
        assert_eq!(
            after_cold.cache_misses,
            jobs.len() as u64,
            "cold pass must execute every job"
        );
        assert_eq!(after_cold.cache_hits, 0, "cold pass must not hit the cache");

        let (hit_wall, hit_lats) = run_pass(&server, &jobs);
        let after_hit = server.stats();
        assert_eq!(
            after_hit.cache_hits,
            jobs.len() as u64,
            "warm pass must be served entirely from the cache"
        );
        assert_eq!(
            after_hit.cache_misses, after_cold.cache_misses,
            "warm pass must not execute anything"
        );

        println!(
            "concurrency {conc:>2}: load {load_s:.3}s | cold {:.1} jobs/s \
             (p50 {:.0}ms, p99 {:.0}ms) | cache-hit {:.0} jobs/s (p50 {:.2}ms, p99 {:.2}ms)",
            jobs.len() as f64 / cold_wall,
            percentile(&cold_lats, 0.50) * 1e3,
            percentile(&cold_lats, 0.99) * 1e3,
            jobs.len() as f64 / hit_wall,
            percentile(&hit_lats, 0.50) * 1e3,
            percentile(&hit_lats, 0.99) * 1e3,
        );
        rows.push(format!(
            "    {{\"concurrency\": {conc}, \"jobs\": {}, \"load_s\": {load_s:.6}, \
             {}, {}}}",
            jobs.len(),
            pass_json("cold", cold_wall, &cold_lats),
            pass_json("cache_hit", hit_wall, &hit_lats),
        ));
        server.shutdown();
    }

    let json = format!(
        "{{\n  \"dataset\": \"twitter50\",\n  \"policy\": \"cvc\",\n  \"variant\": \"Var4\",\n  \
         \"devices\": {gpus},\n  \"extra_scale\": {extra_scale},\n  \
         \"job_matrix\": \"bfs x6 + sssp x4 + bc x2 + pagerank + cc + kcore x2 (16 distinct jobs)\",\n  \
         \"runs\": [\n{}\n  ],\n  \
         \"note\": \"Resident JobServer: dataset loaded/partitioned once per server, then the \
         16-job matrix submitted by concurrent client threads at server concurrency 1/4/16. \
         Latency is client-observed submit-to-result (queueing included). The cold pass executes \
         every job (asserted via cache_misses); the cache_hit pass resubmits the identical matrix \
         and is served entirely from the keyed result cache (asserted via cache_hits).\"\n}}\n",
        rows.join(",\n")
    );
    or_exit(write_output(&out_path, &json), USAGE);
    println!("\nwrote {out_path}");
}
