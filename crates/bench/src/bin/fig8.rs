//! Figure 8: breakdown of execution time of D-IrGL (Var4) under the four
//! partitioning policies for the medium graphs on 32 P100 GPUs of Bridges.

use dirgl_bench::{print_breakdown, Args, BenchId, Breakdown, LoadedDataset, PartitionCache};
use dirgl_core::Variant;
use dirgl_gpusim::Platform;
use dirgl_graph::DatasetId;
use dirgl_partition::Policy;

fn main() {
    let args = Args::parse();
    let platform = Platform::bridges(32);
    println!("Figure 8: breakdown of D-IrGL (Var4) by policy, medium graphs @ 32 GPUs");
    for id in DatasetId::MEDIUM {
        let ld = LoadedDataset::load(id, args.extra_scale);
        let mut cache = PartitionCache::new();
        for bench in BenchId::ALL {
            let rows: Vec<Breakdown> = [Policy::Hvc, Policy::Oec, Policy::Iec, Policy::Cvc]
                .iter()
                .map(|&policy| Breakdown {
                    label: policy.name().into(),
                    result: dirgl_bench::run_dirgl(
                        bench,
                        &ld,
                        &mut cache,
                        &platform,
                        policy,
                        Variant::var4(),
                    ),
                })
                .collect();
            print_breakdown(
                &format!("{} / {} @ 32 GPUs", bench.name(), id.name()),
                &rows,
            );
        }
    }
    println!("\nPaper shape: communication dominates; CVC's communication time is");
    println!("lowest even when it moves more data (fewer partners).");
}
