//! Figure 4: breakdown of execution time of the D-IrGL variants (IEC) for
//! the medium graphs on 32 P100 GPUs of Bridges, with communication-volume
//! annotations.

use dirgl_bench::{print_breakdown, Args, BenchId, Breakdown, LoadedDataset, PartitionCache};
use dirgl_core::Variant;
use dirgl_gpusim::Platform;
use dirgl_graph::DatasetId;
use dirgl_partition::Policy;

fn main() {
    let args = Args::parse();
    let platform = Platform::bridges(32);
    let mut trace = dirgl_bench::cli::or_exit(args.open_trace(), Args::USAGE);
    println!("Figure 4: breakdown of D-IrGL variants (IEC), medium graphs @ 32 GPUs");
    for id in DatasetId::MEDIUM {
        let ld = LoadedDataset::load(id, args.extra_scale);
        let mut cache = PartitionCache::new();
        for bench in BenchId::ALL {
            let rows: Vec<Breakdown> = Variant::all()
                .iter()
                .enumerate()
                .map(|(vi, variant)| Breakdown {
                    label: format!("Var{}", vi + 1),
                    result: dirgl_bench::run_dirgl_maybe_traced(
                        bench,
                        &ld,
                        &mut cache,
                        &platform,
                        Policy::Iec,
                        *variant,
                        &mut trace,
                        &format!("{}/{}/Var{}", bench.name(), id.name(), vi + 1),
                    ),
                })
                .collect();
            print_breakdown(
                &format!("{} / {} @ 32 GPUs", bench.name(), id.name()),
                &rows,
            );
        }
    }
    println!("\nPaper shape: Var3 cuts volume sharply vs Var2 (UO); Var2 only helps");
    println!("compute where max in-degree is huge (pagerank); Var4 shrinks wait.");
}
