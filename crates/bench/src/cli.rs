//! Shared `Result`-based command-line parsing for the harness binaries.
//!
//! The binaries used to `panic!` on a bad flag, which prints a backtrace
//! hint instead of usage and exits with the panic status. Everything now
//! funnels through here: parsers return `Result<_, CliError>`, and
//! [`or_exit`] turns an error into a `error: …` + usage message on stderr
//! and a nonzero (status 2) exit.

use std::fmt;
use std::str::FromStr;

/// A command-line parse failure: what was wrong, human-readable.
#[derive(Clone, Debug, PartialEq)]
pub struct CliError {
    /// The message printed after `error:`.
    pub message: String,
}

impl CliError {
    /// Error with the given message.
    pub fn new(message: impl Into<String>) -> CliError {
        CliError {
            message: message.into(),
        }
    }

    /// The standard unknown-argument error.
    pub fn unknown_arg(arg: &str) -> CliError {
        CliError::new(format!("unknown argument `{arg}`"))
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for CliError {}

/// Token stream over a binary's arguments (program name already skipped).
pub struct ArgStream {
    it: std::vec::IntoIter<String>,
}

impl ArgStream {
    /// Stream over `std::env::args`, program name skipped.
    pub fn from_env() -> ArgStream {
        ArgStream {
            it: std::env::args().skip(1).collect::<Vec<_>>().into_iter(),
        }
    }

    /// Stream over explicit tokens (tests).
    pub fn from_tokens<S: Into<String>>(tokens: impl IntoIterator<Item = S>) -> ArgStream {
        ArgStream {
            it: tokens
                .into_iter()
                .map(Into::into)
                .collect::<Vec<_>>()
                .into_iter(),
        }
    }

    /// Next raw token, if any.
    pub fn next_arg(&mut self) -> Option<String> {
        self.it.next()
    }

    /// The value token following `flag`, or a "needs a value" error.
    pub fn value(&mut self, flag: &str) -> Result<String, CliError> {
        self.it
            .next()
            .ok_or_else(|| CliError::new(format!("{flag} needs a value")))
    }

    /// The value token following `flag`, parsed as `T`; `what` names the
    /// expected shape in the error (e.g. "a positive integer").
    pub fn parsed<T: FromStr>(&mut self, flag: &str, what: &str) -> Result<T, CliError> {
        let v = self.value(flag)?;
        v.parse()
            .map_err(|_| CliError::new(format!("{flag} needs {what}, got `{v}`")))
    }
}

/// Parses a comma-separated vertex-id list (`--sources 3,17,99`). Rejects
/// an empty list and names the offending token on a parse failure.
pub fn parse_source_list(flag: &str, v: &str) -> Result<Vec<u32>, CliError> {
    let mut out = Vec::new();
    for tok in v.split(',') {
        let tok = tok.trim();
        if tok.is_empty() {
            return Err(CliError::new(format!(
                "{flag} has an empty vertex id in `{v}`"
            )));
        }
        out.push(
            tok.parse()
                .map_err(|_| CliError::new(format!("{flag}: `{tok}` is not a vertex id")))?,
        );
    }
    Ok(out)
}

/// Writes a harness output file (`--out` results JSON and the like),
/// routing failures through [`CliError`] so the binaries fail fast via
/// [`or_exit`] instead of panicking with a backtrace hint. A missing
/// parent directory is the common mistake, so it gets a dedicated error
/// naming the directory (plain `fs::write` reports only the full path
/// and an OS code).
pub fn write_output(path: &str, contents: &str) -> Result<(), CliError> {
    let parent = std::path::Path::new(path).parent();
    if let Some(dir) = parent.filter(|d| !d.as_os_str().is_empty() && !d.exists()) {
        return Err(CliError::new(format!(
            "cannot write output file {path}: parent directory `{}` does not exist",
            dir.display()
        )));
    }
    std::fs::write(path, contents)
        .map_err(|e| CliError::new(format!("cannot write output file {path}: {e}")))
}

/// Unwraps a parse result; on error prints the message and `usage` to
/// stderr and exits with status 2.
pub fn or_exit<T>(r: Result<T, CliError>, usage: &str) -> T {
    match r {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{usage}");
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_and_parsed() {
        let mut s = ArgStream::from_tokens(["--scale", "8", "--name", "x", "--bad", "zz"]);
        assert_eq!(s.next_arg().as_deref(), Some("--scale"));
        assert_eq!(s.parsed::<u64>("--scale", "a positive integer"), Ok(8));
        assert_eq!(s.next_arg().as_deref(), Some("--name"));
        assert_eq!(s.value("--name").as_deref(), Ok("x"));
        assert_eq!(s.next_arg().as_deref(), Some("--bad"));
        let err = s.parsed::<u64>("--bad", "a positive integer").unwrap_err();
        assert!(err.message.contains("--bad"), "{}", err.message);
        assert!(err.message.contains("zz"), "{}", err.message);
    }

    #[test]
    fn write_output_missing_parent_names_directory() {
        let err = write_output("/definitely/not/a/dir/out.json", "{}").unwrap_err();
        assert!(
            err.message.contains("/definitely/not/a/dir"),
            "{}",
            err.message
        );
        assert!(err.message.contains("parent directory"), "{}", err.message);
    }

    #[test]
    fn source_lists() {
        assert_eq!(
            parse_source_list("--sources", "3, 17,99"),
            Ok(vec![3, 17, 99])
        );
        assert_eq!(parse_source_list("--sources", "0"), Ok(vec![0]));
        let err = parse_source_list("--sources", "3,,9").unwrap_err();
        assert!(err.message.contains("empty vertex id"), "{}", err.message);
        let err = parse_source_list("--sources", "3,x").unwrap_err();
        assert!(err.message.contains("`x`"), "{}", err.message);
    }

    #[test]
    fn missing_value_and_unknown() {
        let mut s = ArgStream::from_tokens(["--trace"]);
        s.next_arg();
        let err = s.value("--trace").unwrap_err();
        assert_eq!(err.message, "--trace needs a value");
        assert_eq!(
            CliError::unknown_arg("--wat").message,
            "unknown argument `--wat`"
        );
    }
}
