//! Device health: which simulated GPUs are alive, slow, or gone.
//!
//! The fault layer (`dirgl-comm::faults`) decides *when* a device crashes
//! or straggles; this tracker records the resulting health so the engines
//! and transport can ask one authoritative question — "is device `d`
//! usable right now, and at what speed?" — without each re-deriving it
//! from the fault schedule.

/// Health of one device.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DeviceHealth {
    /// Computing at full speed.
    #[default]
    Healthy,
    /// Alive but slowed by the recorded factor (stragglers still
    /// participate in every barrier — that is what makes them expensive).
    Straggler,
    /// Crashed: computes nothing, acks nothing.
    Dead,
}

/// Health registry for all devices of a platform.
#[derive(Clone, Debug)]
pub struct HealthTracker {
    status: Vec<DeviceHealth>,
    slow_factor: Vec<f64>,
}

impl HealthTracker {
    /// All devices healthy.
    pub fn new(num_devices: u32) -> HealthTracker {
        HealthTracker {
            status: vec![DeviceHealth::Healthy; num_devices as usize],
            slow_factor: vec![1.0; num_devices as usize],
        }
    }

    /// Current health of `device`.
    pub fn health(&self, device: u32) -> DeviceHealth {
        self.status[device as usize]
    }

    /// True unless `device` is dead.
    pub fn is_alive(&self, device: u32) -> bool {
        self.status[device as usize] != DeviceHealth::Dead
    }

    /// Records a crash.
    pub fn mark_dead(&mut self, device: u32) {
        self.status[device as usize] = DeviceHealth::Dead;
        self.slow_factor[device as usize] = 1.0;
    }

    /// Brings a crashed device back (post-recovery rejoin).
    pub fn revive(&mut self, device: u32) {
        self.status[device as usize] = DeviceHealth::Healthy;
        self.slow_factor[device as usize] = 1.0;
    }

    /// Marks `device` as a straggler computing `factor`× slower.
    pub fn set_straggler(&mut self, device: u32, factor: f64) {
        if self.status[device as usize] != DeviceHealth::Dead {
            self.status[device as usize] = DeviceHealth::Straggler;
            self.slow_factor[device as usize] = factor;
        }
    }

    /// Ends a straggler window.
    pub fn clear_straggler(&mut self, device: u32) {
        if self.status[device as usize] == DeviceHealth::Straggler {
            self.status[device as usize] = DeviceHealth::Healthy;
            self.slow_factor[device as usize] = 1.0;
        }
    }

    /// Compute-time multiplier for `device` (1.0 unless straggling).
    pub fn factor(&self, device: u32) -> f64 {
        self.slow_factor[device as usize]
    }

    /// Number of devices currently alive.
    pub fn alive_count(&self) -> u32 {
        self.status
            .iter()
            .filter(|&&s| s != DeviceHealth::Dead)
            .count() as u32
    }

    /// Per-device liveness flags (index = device id).
    pub fn alive_flags(&self) -> Vec<bool> {
        self.status
            .iter()
            .map(|&s| s != DeviceHealth::Dead)
            .collect()
    }

    /// True when every device is healthy and at full speed.
    pub fn all_healthy(&self) -> bool {
        self.status.iter().all(|&s| s == DeviceHealth::Healthy)
    }

    /// Number of devices tracked (alive or not).
    pub fn num_devices(&self) -> u32 {
        self.status.len() as u32
    }

    /// Per-device health snapshot (index = device id) — what an
    /// operator-facing status endpoint reports alongside residual memory.
    pub fn statuses(&self) -> &[DeviceHealth] {
        &self.status
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle() {
        let mut h = HealthTracker::new(4);
        assert!(h.all_healthy());
        assert_eq!(h.alive_count(), 4);

        h.set_straggler(1, 4.0);
        assert_eq!(h.health(1), DeviceHealth::Straggler);
        assert!(h.is_alive(1));
        assert_eq!(h.factor(1), 4.0);
        assert!(!h.all_healthy());
        assert_eq!(h.alive_count(), 4, "stragglers are alive");

        h.clear_straggler(1);
        assert!(h.all_healthy());
        assert_eq!(h.factor(1), 1.0);

        h.mark_dead(2);
        assert!(!h.is_alive(2));
        assert_eq!(h.alive_count(), 3);
        assert_eq!(h.num_devices(), 4);
        assert_eq!(h.alive_flags(), vec![true, true, false, true]);
        assert_eq!(h.statuses()[2], DeviceHealth::Dead);
        // Dead devices can't straggle.
        h.set_straggler(2, 2.0);
        assert_eq!(h.health(2), DeviceHealth::Dead);

        h.revive(2);
        assert!(h.is_alive(2));
        assert!(h.all_healthy());
    }
}
