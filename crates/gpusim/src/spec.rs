//! GPU device specifications.
//!
//! Three presets cover the paper's hardware: Tesla P100 (Bridges), Tesla
//! K80 and GeForce GTX 1080 (Tuxedo). Edge throughput is the effective
//! memory-bound rate of graph kernels (device bandwidth over ~300 bytes of
//! traffic per processed edge including atomics), the standard back-of-
//! envelope for GPU graph frameworks.

use serde::Serialize;

/// Specification of one GPU device.
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub struct GpuSpec {
    /// Marketing name.
    pub name: &'static str,
    /// Streaming multiprocessors.
    pub sm_count: u32,
    /// Resident thread blocks per SM for a typical graph kernel.
    pub blocks_per_sm: u32,
    /// Threads per block the frameworks launch with.
    pub threads_per_block: u32,
    /// SIMT warp width.
    pub warp_size: u32,
    /// Device memory in bytes (paper value; the runtime divides by the
    /// dataset's scale divisor).
    pub memory_bytes: u64,
    /// Effective edges processed per second when perfectly balanced.
    pub edge_throughput: f64,
    /// Fixed kernel-launch cost in seconds.
    pub kernel_launch_overhead: f64,
    /// Prefix-scan throughput (items/second) for UO update extraction.
    pub scan_throughput: f64,
    /// Fixed cost of a scan+gather pipeline launch, seconds.
    pub scan_overhead: f64,
}

impl GpuSpec {
    /// NVIDIA Tesla P100 (16 GB, Bridges cluster).
    pub fn p100() -> GpuSpec {
        GpuSpec {
            name: "Tesla P100",
            sm_count: 56,
            blocks_per_sm: 2,
            threads_per_block: 256,
            warp_size: 32,
            memory_bytes: 16_000_000_000,
            edge_throughput: 2.0e9,
            kernel_launch_overhead: 8e-6,
            scan_throughput: 10.0e9,
            scan_overhead: 25e-6,
        }
    }

    /// NVIDIA Tesla K80, one GK210 die (12 GB, Tuxedo).
    pub fn k80() -> GpuSpec {
        GpuSpec {
            name: "Tesla K80",
            sm_count: 13,
            blocks_per_sm: 2,
            threads_per_block: 256,
            warp_size: 32,
            memory_bytes: 12_000_000_000,
            edge_throughput: 0.7e9,
            kernel_launch_overhead: 10e-6,
            scan_throughput: 4.0e9,
            scan_overhead: 30e-6,
        }
    }

    /// NVIDIA GeForce GTX 1080 (8 GB, Tuxedo).
    pub fn gtx1080() -> GpuSpec {
        GpuSpec {
            name: "GTX 1080",
            sm_count: 20,
            blocks_per_sm: 2,
            threads_per_block: 256,
            warp_size: 32,
            memory_bytes: 8_000_000_000,
            edge_throughput: 1.1e9,
            kernel_launch_overhead: 8e-6,
            scan_throughput: 6.0e9,
            scan_overhead: 25e-6,
        }
    }

    /// Concurrent thread blocks resident on the device.
    pub fn num_blocks(&self) -> u32 {
        self.sm_count * self.blocks_per_sm
    }

    /// Per-block edge throughput (edges/second).
    pub fn block_throughput(&self) -> f64 {
        self.edge_throughput / self.num_blocks() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered_by_capability() {
        let (p100, k80, gtx) = (GpuSpec::p100(), GpuSpec::k80(), GpuSpec::gtx1080());
        assert!(p100.edge_throughput > gtx.edge_throughput);
        assert!(gtx.edge_throughput > k80.edge_throughput);
        assert!(p100.memory_bytes > k80.memory_bytes);
        assert!(k80.memory_bytes > gtx.memory_bytes);
    }

    #[test]
    fn block_arithmetic() {
        let p = GpuSpec::p100();
        assert_eq!(p.num_blocks(), 112);
        let per_block = p.block_throughput();
        assert!((per_block * 112.0 - p.edge_throughput).abs() < 1.0);
    }
}
