//! Kernel timing: converts a work distribution into simulated seconds.

use serde::{Deserialize, Serialize};

use crate::sched::{distribute, Balancer, WorkDistribution};
use crate::spec::GpuSpec;

/// Outcome of one simulated kernel launch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct KernelResult {
    /// Simulated wall time of the launch, seconds.
    pub time: f64,
    /// Work summary.
    pub work: WorkDistribution,
}

/// Timing model bound to one device specification.
#[derive(Clone, Copy, Debug)]
pub struct KernelModel {
    /// The device this model times.
    pub spec: GpuSpec,
}

impl KernelModel {
    /// Creates a model for `spec`.
    pub fn new(spec: GpuSpec) -> KernelModel {
        KernelModel { spec }
    }

    /// Times one operator kernel over the active vertices.
    ///
    /// Kernel time = launch overhead + slowest block's load at the
    /// per-block throughput; a perfectly balanced kernel therefore runs at
    /// the device's full edge throughput.
    pub fn launch<I>(&self, balancer: Balancer, degrees: I, work_scale: u64) -> KernelResult
    where
        I: IntoIterator<Item = u32>,
    {
        let work = distribute(balancer, degrees, work_scale, self.spec.num_blocks());
        let time = if work.active_vertices == 0 {
            0.0
        } else {
            self.spec.kernel_launch_overhead + work.max_block_load / self.spec.block_throughput()
        };
        KernelResult { time, work }
    }

    /// Times a prefix-scan + gather extraction over `items` paper-equivalent
    /// elements (the UO overhead of §V-B3).
    pub fn scan_time(&self, items: u64) -> f64 {
        if items == 0 {
            return 0.0;
        }
        self.spec.scan_overhead + items as f64 / self.spec.scan_throughput
    }

    /// Times the per-round varint decode of `edges` compressed adjacency
    /// entries when a partition runs spilled (held compressed on-device and
    /// expanded row-by-row into scratch). Modeled as a scan-shaped pass at a
    /// quarter of the scan throughput: decoding is sequential within a row
    /// (each gap depends on the previous target) but rows decode
    /// independently, so it streams — just slower than a pure gather.
    pub fn decode_time(&self, edges: u64) -> f64 {
        if edges == 0 {
            return 0.0;
        }
        self.spec.scan_overhead + edges as f64 / (self.spec.scan_throughput / 4.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_kernel_runs_at_full_throughput() {
        let m = KernelModel::new(GpuSpec::p100());
        // 112k vertices of degree 9 -> exactly 10 units per block per
        // vertex round; total = 1.12M units.
        let degs = vec![9u32; 112_000];
        let r = m.launch(Balancer::Lb, degs, 1);
        let ideal = r.work.total_work as f64 / m.spec.edge_throughput;
        assert!(r.time < 1.3 * ideal + 1e-5, "time={} ideal={ideal}", r.time);
    }

    #[test]
    fn empty_launch_is_free() {
        let m = KernelModel::new(GpuSpec::p100());
        let r = m.launch(Balancer::Twc, std::iter::empty(), 1024);
        assert_eq!(r.time, 0.0);
    }

    #[test]
    fn slower_gpu_takes_longer() {
        let degs = vec![16u32; 10_000];
        let p100 = KernelModel::new(GpuSpec::p100()).launch(Balancer::Alb, degs.clone(), 64);
        let k80 = KernelModel::new(GpuSpec::k80()).launch(Balancer::Alb, degs, 64);
        assert!(k80.time > p100.time);
    }

    #[test]
    fn decode_is_slower_than_scan_and_free_when_empty() {
        let m = KernelModel::new(GpuSpec::p100());
        assert_eq!(m.decode_time(0), 0.0);
        let edges = 10_000_000;
        assert!(m.decode_time(edges) > m.scan_time(edges));
        // Quarter throughput: the variable part is exactly 4x the scan's.
        let scan_var = m.scan_time(edges) - m.spec.scan_overhead;
        let dec_var = m.decode_time(edges) - m.spec.scan_overhead;
        assert!((dec_var - 4.0 * scan_var).abs() < 1e-9 * dec_var.abs());
    }

    #[test]
    fn scan_time_scales_with_items() {
        let m = KernelModel::new(GpuSpec::p100());
        assert_eq!(m.scan_time(0), 0.0);
        let t1 = m.scan_time(1_000_000);
        let t2 = m.scan_time(100_000_000);
        assert!(t2 > t1);
        assert!(t1 >= m.spec.scan_overhead);
    }
}
