//! Device-memory accounting.
//!
//! GPU memory is the binding constraint of the whole study: "imbalanced
//! partitions may prevent the computation from running at all" (§I). Every
//! allocation a partition needs — CSR arrays, labels, update bitsets,
//! communication buffers — is charged here, and exceeding the device
//! capacity produces an [`OomError`], which surfaces in the harness as the
//! paper's missing data points.

use serde::{Deserialize, Serialize};

/// Allocation failure: the device cannot hold the requested working set.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct OomError {
    /// Bytes the failing allocation requested.
    pub requested: u64,
    /// Bytes already allocated.
    pub in_use: u64,
    /// Device capacity in bytes.
    pub capacity: u64,
}

impl std::fmt::Display for OomError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "out of device memory: requested {} B with {} B in use of {} B capacity",
            self.requested, self.in_use, self.capacity
        )
    }
}

impl std::error::Error for OomError {}

/// Tracks allocations against a fixed device capacity.
#[derive(Clone, Debug)]
pub struct MemoryTracker {
    capacity: u64,
    in_use: u64,
    peak: u64,
}

impl MemoryTracker {
    /// A tracker with the given capacity in bytes.
    pub fn new(capacity: u64) -> MemoryTracker {
        MemoryTracker {
            capacity,
            in_use: 0,
            peak: 0,
        }
    }

    /// Attempts to allocate `bytes`; fails without side effects on OOM.
    pub fn alloc(&mut self, bytes: u64) -> Result<(), OomError> {
        if self.in_use.saturating_add(bytes) > self.capacity {
            return Err(OomError {
                requested: bytes,
                in_use: self.in_use,
                capacity: self.capacity,
            });
        }
        self.in_use += bytes;
        self.peak = self.peak.max(self.in_use);
        Ok(())
    }

    /// Releases `bytes` (saturating).
    pub fn free(&mut self, bytes: u64) {
        self.in_use = self.in_use.saturating_sub(bytes);
    }

    /// Bytes currently allocated.
    pub fn in_use(&self) -> u64 {
        self.in_use
    }

    /// High-water mark — the number Table III reports per framework.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// Device capacity.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes still allocatable right now (`capacity − in_use`) — the
    /// residual an admission controller checks a predicted footprint
    /// against before launching work on this device.
    pub fn residual(&self) -> u64 {
        self.capacity.saturating_sub(self.in_use)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_peak() {
        let mut m = MemoryTracker::new(100);
        m.alloc(60).unwrap();
        m.alloc(30).unwrap();
        assert_eq!(m.in_use(), 90);
        assert_eq!(m.residual(), 10);
        m.free(50);
        assert_eq!(m.in_use(), 40);
        assert_eq!(m.residual(), 60);
        assert_eq!(m.peak(), 90);
        m.alloc(20).unwrap();
        assert_eq!(m.peak(), 90);
    }

    #[test]
    fn oom_is_side_effect_free() {
        let mut m = MemoryTracker::new(100);
        m.alloc(80).unwrap();
        let err = m.alloc(30).unwrap_err();
        assert_eq!(
            err,
            OomError {
                requested: 30,
                in_use: 80,
                capacity: 100
            }
        );
        assert_eq!(m.in_use(), 80);
        // Exactly filling works.
        m.alloc(20).unwrap();
        assert_eq!(m.in_use(), 100);
    }

    #[test]
    fn free_saturates() {
        let mut m = MemoryTracker::new(10);
        m.alloc(5).unwrap();
        m.free(100);
        assert_eq!(m.in_use(), 0);
    }
}
