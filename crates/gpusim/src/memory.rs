//! Device-memory accounting.
//!
//! GPU memory is the binding constraint of the whole study: "imbalanced
//! partitions may prevent the computation from running at all" (§I). Every
//! allocation a partition needs — CSR arrays, labels, update bitsets,
//! communication buffers — is charged here, and exceeding the device
//! capacity produces an [`OomError`], which surfaces in the harness as the
//! paper's missing data points.

use serde::{Deserialize, Serialize};

/// Allocation failure: the device cannot hold the requested working set.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct OomError {
    /// Bytes the failing allocation requested.
    pub requested: u64,
    /// Bytes already allocated.
    pub in_use: u64,
    /// Device capacity in bytes.
    pub capacity: u64,
}

impl std::fmt::Display for OomError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "out of device memory: requested {} B with {} B in use of {} B capacity",
            self.requested, self.in_use, self.capacity
        )
    }
}

impl std::error::Error for OomError {}

/// Which adjacency representation a device holds its partition in.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GraphRepr {
    /// Plain CSR arrays — full edge throughput, full footprint.
    Raw,
    /// Delta-gap varint adjacency, decoded row-by-row each round — smaller
    /// footprint, pays a per-round decode charge.
    Compressed,
}

impl GraphRepr {
    /// Display name for reports.
    pub fn name(self) -> &'static str {
        match self {
            GraphRepr::Raw => "raw",
            GraphRepr::Compressed => "compressed",
        }
    }
}

/// Predicted device footprint of one partition under each representation.
/// The admission side computes both candidates once and picks the cheapest
/// representation the capacity admits — raw preferred (no decode charge),
/// compressed as the spill fallback.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReprCost {
    /// Bytes with plain CSR adjacency.
    pub raw: u64,
    /// Bytes with compressed adjacency.
    pub compressed: u64,
}

impl ReprCost {
    /// The representation a device of `capacity` bytes can hold, or `None`
    /// when even the compressed footprint does not fit.
    pub fn choose(&self, capacity: u64) -> Option<GraphRepr> {
        if self.raw <= capacity {
            Some(GraphRepr::Raw)
        } else if self.compressed <= capacity {
            Some(GraphRepr::Compressed)
        } else {
            None
        }
    }

    /// The footprint of the chosen representation.
    pub fn bytes(&self, repr: GraphRepr) -> u64 {
        match repr {
            GraphRepr::Raw => self.raw,
            GraphRepr::Compressed => self.compressed,
        }
    }
}

/// Tracks allocations against a fixed device capacity.
#[derive(Clone, Debug)]
pub struct MemoryTracker {
    capacity: u64,
    in_use: u64,
    peak: u64,
}

impl MemoryTracker {
    /// A tracker with the given capacity in bytes.
    pub fn new(capacity: u64) -> MemoryTracker {
        MemoryTracker {
            capacity,
            in_use: 0,
            peak: 0,
        }
    }

    /// Attempts to allocate `bytes`; fails without side effects on OOM.
    pub fn alloc(&mut self, bytes: u64) -> Result<(), OomError> {
        if self.in_use.saturating_add(bytes) > self.capacity {
            return Err(OomError {
                requested: bytes,
                in_use: self.in_use,
                capacity: self.capacity,
            });
        }
        self.in_use += bytes;
        self.peak = self.peak.max(self.in_use);
        Ok(())
    }

    /// Releases `bytes` (saturating).
    pub fn free(&mut self, bytes: u64) {
        self.in_use = self.in_use.saturating_sub(bytes);
    }

    /// Bytes currently allocated.
    pub fn in_use(&self) -> u64 {
        self.in_use
    }

    /// High-water mark — the number Table III reports per framework.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// Device capacity.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes still allocatable right now (`capacity − in_use`) — the
    /// residual an admission controller checks a predicted footprint
    /// against before launching work on this device.
    pub fn residual(&self) -> u64 {
        self.capacity.saturating_sub(self.in_use)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_peak() {
        let mut m = MemoryTracker::new(100);
        m.alloc(60).unwrap();
        m.alloc(30).unwrap();
        assert_eq!(m.in_use(), 90);
        assert_eq!(m.residual(), 10);
        m.free(50);
        assert_eq!(m.in_use(), 40);
        assert_eq!(m.residual(), 60);
        assert_eq!(m.peak(), 90);
        m.alloc(20).unwrap();
        assert_eq!(m.peak(), 90);
    }

    #[test]
    fn oom_is_side_effect_free() {
        let mut m = MemoryTracker::new(100);
        m.alloc(80).unwrap();
        let err = m.alloc(30).unwrap_err();
        assert_eq!(
            err,
            OomError {
                requested: 30,
                in_use: 80,
                capacity: 100
            }
        );
        assert_eq!(m.in_use(), 80);
        // Exactly filling works.
        m.alloc(20).unwrap();
        assert_eq!(m.in_use(), 100);
    }

    #[test]
    fn repr_cost_prefers_raw_and_falls_back_to_compressed() {
        let c = ReprCost {
            raw: 100,
            compressed: 40,
        };
        assert_eq!(c.choose(120), Some(GraphRepr::Raw));
        assert_eq!(c.choose(100), Some(GraphRepr::Raw));
        assert_eq!(c.choose(99), Some(GraphRepr::Compressed));
        assert_eq!(c.choose(40), Some(GraphRepr::Compressed));
        assert_eq!(c.choose(39), None);
        assert_eq!(c.bytes(GraphRepr::Raw), 100);
        assert_eq!(c.bytes(GraphRepr::Compressed), 40);
    }

    #[test]
    fn free_saturates() {
        let mut m = MemoryTracker::new(10);
        m.alloc(5).unwrap();
        m.free(100);
        assert_eq!(m.in_use(), 0);
    }
}
