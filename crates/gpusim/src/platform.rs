//! Hardware platform descriptions: the Bridges cluster and the Tuxedo
//! single-host machine of §IV-A.

use serde::Serialize;

use crate::spec::GpuSpec;

/// Interconnect parameters of a cluster (host↔host network and the PCIe
/// link between each host and its GPUs).
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub struct ClusterSpec {
    /// Name for reports.
    pub name: &'static str,
    /// Per-host NIC bandwidth, bytes/second.
    pub net_bandwidth: f64,
    /// Per-message network latency, seconds.
    pub net_latency: f64,
    /// Fixed per-partner, per-synchronization software overhead (MPI
    /// progress, matching, posting), seconds.
    pub msg_overhead: f64,
    /// PCIe bandwidth per device link, bytes/second.
    pub pcie_bandwidth: f64,
    /// PCIe transfer latency (driver + DMA setup), seconds.
    pub pcie_latency: f64,
    /// GPUs attached to each host.
    pub gpus_per_host: u32,
}

impl ClusterSpec {
    /// The Bridges cluster: Intel Omni-Path (100 Gb/s line rate), 2 P100s
    /// per host. Bandwidths are *effective* rates for graph-analytics
    /// synchronization traffic, not line rates: MPI messages of a few MB
    /// through pinned-buffer staging reach roughly a third of line rate,
    /// and every device<->host hop costs an extra host-memory copy.
    pub fn bridges() -> ClusterSpec {
        ClusterSpec {
            name: "Bridges",
            net_bandwidth: 4.0e9,
            net_latency: 10e-6,
            msg_overhead: 40e-6,
            pcie_bandwidth: 6.0e9,
            pcie_latency: 12e-6,
            gpus_per_host: 2,
        }
    }

    /// The Tuxedo single host: all six GPUs on one machine, transfers
    /// cross PCIe only (host RAM staging).
    pub fn tuxedo() -> ClusterSpec {
        ClusterSpec {
            name: "Tuxedo",
            // Same-host exchange through pinned host memory: effectively
            // PCIe-bound with negligible "network" latency.
            net_bandwidth: 11.0e9,
            net_latency: 4e-6,
            msg_overhead: 10e-6,
            pcie_bandwidth: 11.0e9,
            pcie_latency: 10e-6,
            gpus_per_host: 6,
        }
    }
}

/// A concrete set of devices mapped onto hosts.
#[derive(Clone, Debug, Serialize)]
pub struct Platform {
    /// Per-device specifications; `gpus[d]` is device `d`.
    pub gpus: Vec<GpuSpec>,
    /// Interconnect parameters.
    pub cluster: ClusterSpec,
}

impl Platform {
    /// `n` identical devices on `cluster` (devices fill hosts in order).
    pub fn homogeneous(n: u32, spec: GpuSpec, cluster: ClusterSpec) -> Platform {
        Platform {
            gpus: vec![spec; n as usize],
            cluster,
        }
    }

    /// The Bridges setup of the paper: `n` P100s, two per host.
    pub fn bridges(n: u32) -> Platform {
        Self::homogeneous(n, GpuSpec::p100(), ClusterSpec::bridges())
    }

    /// The full Tuxedo machine: 4 Tesla K80s then 2 GTX 1080s, one host.
    pub fn tuxedo() -> Platform {
        let mut gpus = vec![GpuSpec::k80(); 4];
        gpus.extend(vec![GpuSpec::gtx1080(); 2]);
        Platform {
            gpus,
            cluster: ClusterSpec::tuxedo(),
        }
    }

    /// The first `n` Tuxedo GPUs (the paper sweeps 1, 2, 4, 6).
    pub fn tuxedo_n(n: u32) -> Platform {
        let mut p = Self::tuxedo();
        p.gpus.truncate(n as usize);
        p
    }

    /// Number of devices.
    pub fn num_devices(&self) -> u32 {
        self.gpus.len() as u32
    }

    /// Host index of device `d`.
    pub fn host_of(&self, d: u32) -> u32 {
        d / self.cluster.gpus_per_host
    }

    /// Number of hosts in use.
    pub fn num_hosts(&self) -> u32 {
        if self.gpus.is_empty() {
            0
        } else {
            self.host_of(self.num_devices() - 1) + 1
        }
    }

    /// True when `a` and `b` live on the same host.
    pub fn same_host(&self, a: u32, b: u32) -> bool {
        self.host_of(a) == self.host_of(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bridges_maps_two_gpus_per_host() {
        let p = Platform::bridges(64);
        assert_eq!(p.num_devices(), 64);
        assert_eq!(p.num_hosts(), 32);
        assert_eq!(p.host_of(0), 0);
        assert_eq!(p.host_of(1), 0);
        assert_eq!(p.host_of(2), 1);
        assert!(p.same_host(62, 63));
        assert!(!p.same_host(1, 2));
    }

    #[test]
    fn tuxedo_is_heterogeneous_single_host() {
        let p = Platform::tuxedo();
        assert_eq!(p.num_devices(), 6);
        assert_eq!(p.num_hosts(), 1);
        assert_eq!(p.gpus[0].name, "Tesla K80");
        assert_eq!(p.gpus[5].name, "GTX 1080");
        let p4 = Platform::tuxedo_n(4);
        assert_eq!(p4.num_devices(), 4);
        assert!(p4.gpus.iter().all(|g| g.name == "Tesla K80"));
    }
}
