//! Virtual-time GPU execution model.
//!
//! The paper's computation results hinge on *how work is distributed over
//! thread blocks*, not on absolute GPU speed. This crate models exactly
//! that: device specifications ([`GpuSpec`]), device-memory tracking with
//! OOM errors ([`memory`]), and the four edge-to-thread-block schedulers
//! the paper compares ([`sched`]):
//!
//! * **TWC** — Thread/Warp/CTA expansion (Merrill et al.): balances within
//!   a thread block but a high-degree vertex still lands wholly on one
//!   block;
//! * **ALB** — the Adaptive Load Balancer (Jatala et al.): splits very
//!   high-degree vertices across *all* blocks, otherwise TWC;
//! * **LB** — Gunrock's load balancer: every vertex's edges spread across
//!   all blocks, at a constant search overhead;
//! * **TB** — Lux's scheme: each vertex's edges go to the threads of one
//!   block regardless of degree.
//!
//! [`kernel::KernelModel`] converts per-block work into simulated kernel
//! time; actual label updates are executed for real by the engine crates.
//!
//! All work quantities are expressed in **paper-equivalent edge units**
//! (scaled degree × dataset divisor) so scheduler thresholds and reported
//! times land on the paper's scale; see `DESIGN.md` §6.

pub mod health;
pub mod kernel;
pub mod memory;
pub mod platform;
pub mod sched;
pub mod spec;

pub use health::{DeviceHealth, HealthTracker};
pub use kernel::{KernelModel, KernelResult};
pub use memory::{GraphRepr, MemoryTracker, OomError, ReprCost};
pub use platform::{ClusterSpec, Platform};
pub use sched::Balancer;
pub use spec::GpuSpec;
