//! Edge-to-thread-block schedulers (§III-E2 of the paper).
//!
//! The scheduler determines the **maximum per-block load**, which in turn
//! determines kernel time: SIMT blocks retire in lock step, so the slowest
//! block is the kernel. The four models reproduce the paper's comparison:
//!
//! |        | within-block balance | across-block balance |
//! |--------|----------------------|----------------------|
//! | TWC    | yes                  | no                   |
//! | ALB    | yes                  | yes (splits giants)  |
//! | LB     | yes                  | yes (splits all)     |
//! | TB     | partial              | no                   |
//!
//! Work is measured in paper-equivalent edge units: a scaled vertex of
//! degree `d` on a dataset with divisor `s` contributes `(d + 1) * s`
//! units (its edges plus per-vertex setup).

use serde::{Deserialize, Serialize};

/// Computation load balancer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Balancer {
    /// Thread/Warp/CTA expansion (D-IrGL Var1).
    Twc,
    /// Adaptive Load Balancer (D-IrGL default, Var2+).
    Alb,
    /// Gunrock's LB: all edges of all vertices split across blocks.
    Lb,
    /// Lux's per-vertex thread-block assignment.
    Tb,
}

impl Balancer {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Balancer::Twc => "TWC",
            Balancer::Alb => "ALB",
            Balancer::Lb => "LB",
            Balancer::Tb => "TB",
        }
    }
}

impl std::fmt::Display for Balancer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// ALB splits a vertex across all blocks when its paper-equivalent edge
/// count exceeds this (a few blocks' worth of threads — the "very high
/// degree vertex" criterion of the ALB paper).
pub const ALB_SPLIT_THRESHOLD: u64 = 4096;

/// Constant inefficiency of LB's per-edge binary searches.
pub const LB_OVERHEAD: f64 = 1.15;

/// Constant inefficiency of TB's missing sub-block expansion (low-degree
/// vertices underfill warps).
pub const TB_OVERHEAD: f64 = 1.10;

/// Work-distribution summary for one kernel launch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct WorkDistribution {
    /// Total paper-equivalent edge units processed.
    pub total_work: u64,
    /// Load of the most-loaded thread block, in the same units, already
    /// including the scheduler's constant overhead factor.
    pub max_block_load: f64,
    /// Number of active vertices scheduled (scaled units).
    pub active_vertices: u64,
}

/// Distributes the active vertices' work over `num_blocks` blocks under
/// `balancer`, returning the resulting load summary.
///
/// `degrees` yields the degree of every *active* vertex; `work_scale` is
/// the dataset's paper-equivalence divisor.
pub fn distribute<I>(
    balancer: Balancer,
    degrees: I,
    work_scale: u64,
    num_blocks: u32,
) -> WorkDistribution
where
    I: IntoIterator<Item = u32>,
{
    let b = num_blocks.max(1) as f64;
    let mut total: u64 = 0;
    let mut active: u64 = 0;
    let mut max_item: u64 = 0;
    // ALB: work carried by vertices above the split threshold.
    let mut spread: u64 = 0;
    let mut rest_total: u64 = 0;
    let mut rest_max: u64 = 0;
    for d in degrees {
        let cost = (d as u64 + 1) * work_scale;
        total += cost;
        active += 1;
        max_item = max_item.max(cost);
        if cost > ALB_SPLIT_THRESHOLD {
            spread += cost;
        } else {
            rest_total += cost;
            rest_max = rest_max.max(cost);
        }
    }

    // Greedy dynamic scheduling puts the giant item on one block and fills
    // the others: max load ~= max(total/B, giant + (total - giant)/B).
    let greedy = |tot: u64, giant: u64| -> f64 {
        let tot = tot as f64;
        let giant = giant as f64;
        (tot / b).max(giant + (tot - giant) / b)
    };

    let max_block_load = match balancer {
        Balancer::Twc => greedy(total, max_item),
        Balancer::Tb => greedy(total, max_item) * TB_OVERHEAD,
        Balancer::Lb => (total as f64 / b) * LB_OVERHEAD,
        Balancer::Alb => {
            // Giants spread evenly (with a small coordination surcharge);
            // the rest behaves like TWC.
            greedy(rest_total, rest_max) + (spread as f64 / b) * 1.05
        }
    };

    WorkDistribution {
        total_work: total,
        max_block_load,
        active_vertices: active,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const B: u32 = 112;

    #[test]
    fn balanced_work_is_scheduler_agnostic_modulo_overhead() {
        // 10k vertices of degree 8, scale 1: nothing to split.
        let degs = vec![8u32; 10_000];
        let twc = distribute(Balancer::Twc, degs.iter().copied(), 1, B);
        let alb = distribute(Balancer::Alb, degs.iter().copied(), 1, B);
        assert_eq!(twc.total_work, 90_000);
        assert!((twc.max_block_load - alb.max_block_load).abs() / twc.max_block_load < 0.06);
    }

    #[test]
    fn giant_vertex_hurts_twc_not_alb() {
        // One vertex with 1M edges among 10k degree-8 vertices.
        let mut degs = vec![8u32; 10_000];
        degs.push(1_000_000);
        let twc = distribute(Balancer::Twc, degs.iter().copied(), 1, B);
        let alb = distribute(Balancer::Alb, degs.iter().copied(), 1, B);
        // TWC: the giant dominates one block.
        assert!(twc.max_block_load > 1_000_000.0);
        // ALB: the giant spreads; max block close to total/B.
        let fair = twc.total_work as f64 / B as f64;
        assert!(
            alb.max_block_load < 1.6 * fair,
            "alb={} fair={fair}",
            alb.max_block_load
        );
        assert!(twc.max_block_load > 5.0 * alb.max_block_load);
    }

    #[test]
    fn work_scale_promotes_modest_degrees_to_giants() {
        // Scaled degree 40 with divisor 1024 = 41984 paper-equivalent
        // edges: above the ALB split threshold, exactly like the original
        // high-degree vertex it stands for.
        let mut degs = vec![2u32; 1000];
        degs.push(40);
        let twc = distribute(Balancer::Twc, degs.iter().copied(), 1024, B);
        let alb = distribute(Balancer::Alb, degs.iter().copied(), 1024, B);
        assert!(twc.max_block_load > 1.8 * alb.max_block_load);
    }

    #[test]
    fn lb_is_flat_but_taxed() {
        let mut degs = vec![8u32; 1000];
        degs.push(100_000);
        let lb = distribute(Balancer::Lb, degs.iter().copied(), 1, B);
        let fair = lb.total_work as f64 / B as f64;
        assert!((lb.max_block_load - fair * LB_OVERHEAD).abs() < 1e-6);
    }

    #[test]
    fn tb_matches_twc_shape_with_surcharge() {
        let degs = vec![4u32; 5000];
        let twc = distribute(Balancer::Twc, degs.iter().copied(), 1, B);
        let tb = distribute(Balancer::Tb, degs.iter().copied(), 1, B);
        assert!((tb.max_block_load / twc.max_block_load - TB_OVERHEAD).abs() < 1e-9);
    }

    #[test]
    fn empty_active_set() {
        let d = distribute(Balancer::Twc, std::iter::empty(), 1, B);
        assert_eq!(d.total_work, 0);
        assert_eq!(d.active_vertices, 0);
        assert_eq!(d.max_block_load, 0.0);
    }
}
