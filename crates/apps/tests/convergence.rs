//! End-to-end correctness: every benchmark, on every partitioning policy,
//! under both execution models, must reproduce the sequential reference.

use dirgl_apps::{reference, Bfs, Cc, KCore, PageRank, Sssp};
use dirgl_core::{RunConfig, Runtime, Variant};
use dirgl_gpusim::Platform;
use dirgl_graph::weights::randomize_weights;
use dirgl_graph::{Csr, RmatConfig, WebCrawlConfig};
use dirgl_partition::Policy;

const POLICIES: [Policy; 6] = [
    Policy::Oec,
    Policy::Iec,
    Policy::Hvc,
    Policy::Cvc,
    Policy::Random,
    Policy::MetisLike,
];

fn rmat() -> Csr {
    randomize_weights(&RmatConfig::new(9, 8).seed(21).generate(), 100, 5)
}

fn webcrawl() -> Csr {
    randomize_weights(
        &WebCrawlConfig::new(3_000, 40_000, 200, 150, 25)
            .seed(4)
            .generate(),
        100,
        6,
    )
}

fn runtime(policy: Policy, variant: Variant, devices: u32) -> Runtime {
    Runtime::new(Platform::bridges(devices), RunConfig::new(policy, variant))
}

fn exact_match(got: &[f64], want: &[f64], what: &str) {
    assert_eq!(got.len(), want.len());
    for (v, (g, w)) in got.iter().zip(want).enumerate() {
        assert!(g == w, "{what}: vertex {v}: got {g}, want {w}");
    }
}

#[test]
fn bfs_matches_reference_across_policies_and_engines() {
    let g = rmat();
    let app = Bfs::from_max_out_degree(&g);
    let want: Vec<f64> = reference::bfs(&g, app.source)
        .iter()
        .map(|&d| d as f64)
        .collect();
    for policy in POLICIES {
        for variant in [Variant::var1(), Variant::var4()] {
            let out = runtime(policy, variant, 4)
                .runner(&g, &app)
                .execute()
                .unwrap();
            exact_match(
                &out.values,
                &want,
                &format!("bfs/{policy}/{}", variant.label()),
            );
        }
    }
}

#[test]
fn sssp_matches_dijkstra_across_policies_and_engines() {
    let g = rmat();
    let app = Sssp::from_max_out_degree(&g);
    let want: Vec<f64> = reference::sssp(&g, app.source)
        .iter()
        .map(|&d| d as f64)
        .collect();
    for policy in POLICIES {
        for variant in [Variant::var3(), Variant::var4()] {
            let out = runtime(policy, variant, 4)
                .runner(&g, &app)
                .execute()
                .unwrap();
            exact_match(
                &out.values,
                &want,
                &format!("sssp/{policy}/{}", variant.label()),
            );
        }
    }
}

#[test]
fn cc_matches_reference_across_policies_and_engines() {
    let g = webcrawl();
    let want: Vec<f64> = reference::cc(&g.symmetrize())
        .iter()
        .map(|&c| c as f64)
        .collect();
    for policy in POLICIES {
        for variant in [Variant::var2(), Variant::var4()] {
            let out = runtime(policy, variant, 4)
                .runner(&g, &Cc)
                .execute()
                .unwrap();
            exact_match(
                &out.values,
                &want,
                &format!("cc/{policy}/{}", variant.label()),
            );
        }
    }
}

#[test]
fn kcore_matches_peeling_across_policies_and_engines() {
    let g = webcrawl();
    for k in [2, 5, 20] {
        let want: Vec<f64> = reference::kcore(&g, k)
            .iter()
            .map(|&a| if a { 1.0 } else { 0.0 })
            .collect();
        for policy in POLICIES {
            for variant in [Variant::var1(), Variant::var4()] {
                let out = runtime(policy, variant, 4)
                    .runner(&g, &KCore::new(k))
                    .execute()
                    .unwrap();
                exact_match(
                    &out.values,
                    &want,
                    &format!("kcore{k}/{policy}/{}", variant.label()),
                );
            }
        }
    }
}

#[test]
fn pagerank_matches_reference_within_tolerance() {
    let g = rmat();
    let app = PageRank::new();
    let want = reference::pagerank(&g, 0.85, 1e-4, 1000);
    for policy in POLICIES {
        for variant in [Variant::var3(), Variant::var4()] {
            // Run at the realistic paper-equivalence divisor: BASP round
            // duration then dwarfs message latency, so arrivals batch per
            // round as on real hardware (at divisor 1, asynchronous
            // pagerank converges asymptotically through per-fragment wake
            // rounds — correct but glacial).
            let rt = Runtime::new(
                Platform::bridges(4),
                dirgl_core::RunConfig::new(policy, variant).scale(1024),
            );
            let out = rt.runner(&g, &app).execute().unwrap();
            let mut worst = 0.0f64;
            for (g_, w) in out.values.iter().zip(&want) {
                worst = worst.max((g_ - w).abs() / w.max(0.15));
            }
            assert!(
                worst < 0.02,
                "pagerank/{policy}/{}: worst relative error {worst}",
                variant.label()
            );
        }
    }
}

#[test]
fn single_device_equals_multi_device() {
    let g = rmat();
    let app = Bfs::from_max_out_degree(&g);
    let one = runtime(Policy::Oec, Variant::var4(), 1)
        .runner(&g, &app)
        .execute()
        .unwrap();
    let many = runtime(Policy::Cvc, Variant::var4(), 8)
        .runner(&g, &app)
        .execute()
        .unwrap();
    exact_match(&many.values, &one.values, "1-vs-8 devices");
}

#[test]
fn runs_are_deterministic() {
    let g = webcrawl();
    let app = Sssp::from_max_out_degree(&g);
    let rt = runtime(Policy::Cvc, Variant::var4(), 6);
    let a = rt.runner(&g, &app).execute().unwrap();
    let b = rt.runner(&g, &app).execute().unwrap();
    assert_eq!(a.values, b.values);
    assert_eq!(a.report.total_time, b.report.total_time);
    assert_eq!(a.report.comm_bytes, b.report.comm_bytes);
    assert_eq!(a.report.rounds, b.report.rounds);
}

#[test]
fn report_decomposition_is_consistent() {
    let g = rmat();
    let out = runtime(Policy::Cvc, Variant::var3(), 8)
        .runner(&g, &Cc)
        .execute()
        .unwrap();
    let r = &out.report;
    assert!(r.total_time.as_secs_f64() > 0.0);
    // total = max compute + min wait + device comm by construction.
    let sum = r.max_compute() + r.min_wait() + r.device_comm();
    assert_eq!(sum, r.total_time);
    assert!(r.comm_bytes > 0);
    assert!(r.rounds > 0);
    assert_eq!(r.compute_per_device.len(), 8);
    assert!(r.work_items > 0);
    assert!(r.memory_per_device.iter().all(|&m| m > 0));
}

#[test]
fn pagerank_push_matches_pull_and_reference() {
    let g = rmat();
    let want = reference::pagerank(&g, 0.85, 1e-4, 1000);
    for policy in POLICIES {
        for variant in [Variant::var3(), Variant::var4()] {
            let rt = Runtime::new(
                Platform::bridges(4),
                dirgl_core::RunConfig::new(policy, variant).scale(1024),
            );
            let out = rt
                .runner(&g, &dirgl_apps::PageRankPush::new())
                .execute()
                .unwrap();
            let mut worst = 0.0f64;
            for (g_, w) in out.values.iter().zip(&want) {
                worst = worst.max((g_ - w).abs() / w.max(0.15));
            }
            assert!(
                worst < 0.02,
                "pagerank-push/{policy}/{}: worst relative error {worst}",
                variant.label()
            );
        }
    }
}
