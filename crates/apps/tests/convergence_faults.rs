//! End-to-end correctness under injected faults: message loss, a device
//! crash, rollback-and-replay or graceful degradation — and the answers
//! must still match the sequential reference.
//!
//! The seeded fault matrix covers drop rates {1%, 5%, 20%} crossed with
//! one crash (device 1 at round 2), in both recovery modes (rejoin after
//! rollback vs permanent master reassignment), on both engines. bfs, cc
//! and sssp must converge *exactly*; pagerank within the same tolerance
//! the fault-free suite uses. Each run's resilience counters must also
//! tell the story: the crash shows up as a rollback, and degradation as
//! reassigned masters.

use dirgl_apps::{reference, Bfs, Cc, PageRank, Sssp};
use dirgl_comm::FaultPlan;
use dirgl_core::{ResilienceStats, RunConfig, Runtime, Variant};
use dirgl_gpusim::Platform;
use dirgl_graph::weights::randomize_weights;
use dirgl_graph::{Csr, RmatConfig};
use dirgl_partition::Policy;

const DROP_RATES: [f64; 3] = [0.01, 0.05, 0.20];
const DEVICES: u32 = 4;

/// Fault-decision seed; CI sweeps a small fixed matrix via
/// `DIRGL_FAULT_SEED`, local runs default to 7.
fn fault_seed() -> u64 {
    std::env::var("DIRGL_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(7)
}

fn rmat() -> Csr {
    randomize_weights(&RmatConfig::new(9, 8).seed(21).generate(), 100, 5)
}

/// The fault matrix: each drop rate, with and without rejoin, for one
/// engine variant.
fn plans() -> Vec<(String, FaultPlan)> {
    let mut out = Vec::new();
    for drop in DROP_RATES {
        for rejoin in [true, false] {
            let name = format!(
                "drop{}%/{}",
                drop * 100.0,
                if rejoin { "rejoin" } else { "degrade" }
            );
            out.push((
                name,
                FaultPlan::seeded(fault_seed())
                    .with_drop(drop)
                    .with_crash(1, 2, rejoin),
            ));
        }
    }
    out
}

fn faulty_config(variant: Variant, plan: FaultPlan) -> RunConfig {
    RunConfig::new(Policy::Cvc, variant)
        .with_faults(plan)
        .with_checkpoints(2)
}

fn exact_match(got: &[f64], want: &[f64], what: &str) {
    assert_eq!(got.len(), want.len());
    for (v, (g, w)) in got.iter().zip(want).enumerate() {
        assert!(g == w, "{what}: vertex {v}: got {g}, want {w}");
    }
}

/// The crash must be visible in the counters: it happened, a rollback
/// recovered from it, and the chosen recovery mode left its signature.
fn check_recovery(s: &ResilienceStats, rejoin: bool, what: &str) {
    assert_eq!(s.crashes, 1, "{what}: expected exactly one crash");
    assert!(s.rollbacks >= 1, "{what}: crash recovery needs a rollback");
    assert!(s.checkpoints_taken >= 1, "{what}: no checkpoint was taken");
    if rejoin {
        assert_eq!(s.rejoins, 1, "{what}: device should have rejoined");
        assert_eq!(s.masters_reassigned, 0, "{what}: rejoin must not rehome");
    } else {
        assert!(
            s.masters_reassigned > 0,
            "{what}: degradation must reassign the dead device's masters"
        );
        assert_eq!(s.rejoins, 0, "{what}: degradation must not rejoin");
    }
    assert!(
        s.recovery_time.as_secs_f64() > 0.0,
        "{what}: detection + restore must cost simulated time"
    );
}

#[test]
fn bfs_cc_sssp_converge_under_fault_matrix() {
    let g = rmat();
    let bfs = Bfs::from_max_out_degree(&g);
    let sssp = Sssp::from_max_out_degree(&g);
    let want_bfs: Vec<f64> = reference::bfs(&g, bfs.source)
        .iter()
        .map(|&d| d as f64)
        .collect();
    let want_cc: Vec<f64> = reference::cc(&g.symmetrize())
        .iter()
        .map(|&c| c as f64)
        .collect();
    let want_sssp: Vec<f64> = reference::sssp(&g, sssp.source)
        .iter()
        .map(|&d| d as f64)
        .collect();

    let mut total_retransmits = 0u64;
    for variant in [Variant::var3(), Variant::var4()] {
        for (name, plan) in plans() {
            let rejoin = plan.crash.unwrap().rejoin;
            let rt = Runtime::new(
                Platform::bridges(DEVICES),
                faulty_config(variant, plan.clone()),
            );
            for (bench, want) in [("bfs", &want_bfs), ("cc", &want_cc), ("sssp", &want_sssp)] {
                let out = match bench {
                    "bfs" => rt.runner(&g, &bfs).execute().unwrap(),
                    "cc" => rt.runner(&g, &Cc).execute().unwrap(),
                    _ => rt.runner(&g, &sssp).execute().unwrap(),
                };
                let what = format!("{bench}/{}/{name}", variant.label());
                exact_match(&out.values, want, &what);
                check_recovery(&out.report.resilience, rejoin, &what);
                total_retransmits += out.report.resilience.faults.retransmits;
            }
        }
    }
    // Individual 1%-drop runs on a small graph may get lucky, but across
    // the whole matrix the reliable transport must have actually worked.
    assert!(
        total_retransmits > 0,
        "fault matrix never exercised a retransmission"
    );
}

#[test]
fn pagerank_converges_under_drop_and_crash() {
    let g = rmat();
    let app = PageRank::new();
    let want = reference::pagerank(&g, 0.85, 1e-4, 1000);
    for variant in [Variant::var3(), Variant::var4()] {
        for rejoin in [true, false] {
            let plan = FaultPlan::seeded(fault_seed())
                .with_drop(0.05)
                .with_crash(1, 2, rejoin);
            // scale(1024) as in the fault-free pagerank suite: realistic
            // round/latency ratio so BASP batches arrivals per round.
            let cfg = faulty_config(variant, plan).scale(1024);
            let out = Runtime::new(Platform::bridges(DEVICES), cfg)
                .runner(&g, &app)
                .execute()
                .unwrap();
            let what = format!(
                "pagerank/{}/{}",
                variant.label(),
                if rejoin { "rejoin" } else { "degrade" }
            );
            let mut worst = 0.0f64;
            for (g_, w) in out.values.iter().zip(&want) {
                worst = worst.max((g_ - w).abs() / w.max(0.15));
            }
            assert!(worst < 0.02, "{what}: worst relative error {worst}");
            check_recovery(&out.report.resilience, rejoin, &what);
        }
    }
}

#[test]
fn straggler_slows_but_never_corrupts() {
    let g = rmat();
    let app = Bfs::from_max_out_degree(&g);
    let want: Vec<f64> = reference::bfs(&g, app.source)
        .iter()
        .map(|&d| d as f64)
        .collect();
    for variant in [Variant::var3(), Variant::var4()] {
        let clean = Runtime::new(
            Platform::bridges(DEVICES),
            RunConfig::new(Policy::Cvc, variant),
        )
        .runner(&g, &app)
        .execute()
        .unwrap();
        let plan = FaultPlan::seeded(fault_seed()).with_straggler(2, 1, 3, 8.0);
        let slow = Runtime::new(
            Platform::bridges(DEVICES),
            RunConfig::new(Policy::Cvc, variant).with_faults(plan),
        )
        .runner(&g, &app)
        .execute()
        .unwrap();
        let what = format!("straggler/{}", variant.label());
        exact_match(&slow.values, &want, &what);
        if variant.model == dirgl_core::ExecModel::Sync {
            // BSP's barrier makes the slow device binding: strictly slower.
            assert!(
                slow.report.total_time > clean.report.total_time,
                "{what}: an 8x straggler window must cost simulated time \
                 ({} vs {})",
                slow.report.total_time,
                clean.report.total_time
            );
        } else {
            // BASP reschedules around the straggler — it may even finish
            // *faster* (slowing a device batches its arrivals and cuts
            // redundant recomputation, the paper's throttling effect), but
            // the schedule must have actually changed.
            assert_ne!(
                slow.report.total_time, clean.report.total_time,
                "{what}: the straggler window left no timing signature"
            );
        }
    }
}
