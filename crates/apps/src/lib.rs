//! The five benchmarks of the paper (§IV-A), implemented as `dirgl`
//! vertex programs exactly as D-IrGL implements them (§IV-B):
//!
//! * [`Bfs`] — breadth-first search, data-driven push, source = highest
//!   out-degree vertex;
//! * [`Cc`] — weakly connected components, data-driven push label
//!   propagation on the symmetrized graph;
//! * [`KCore`] — k-core decomposition, data-driven push of degree
//!   decrements on the symmetrized graph;
//! * [`PageRank`] — residual pagerank, topology-driven **pull** (the one
//!   benchmark whose load profile is driven by in-degrees — the paper's
//!   TWC-vs-ALB story);
//! * [`Sssp`] — single-source shortest paths over the randomized edge
//!   weights, data-driven push.
//!
//! [`mod@reference`] holds simple sequential implementations every framework
//! result is verified against.

pub mod bc;
pub mod bfs;
pub mod cc;
pub mod kcore;
pub mod pagerank;
pub mod pagerank_push;
pub mod reference;
pub mod sssp;

pub use bc::{
    batched_betweenness_centrality_prepared, betweenness_centrality,
    betweenness_centrality_prepared, BcBackward, BcForward, BcOutput,
};
pub use bfs::Bfs;
pub use cc::Cc;
pub use kcore::KCore;
pub use pagerank::PageRank;
pub use pagerank_push::PageRankPush;
pub use sssp::Sssp;

/// The five benchmark names in the paper's order.
pub const BENCHMARKS: [&str; 5] = ["bfs", "cc", "kcore", "pagerank", "sssp"];

/// Unreachable-distance sentinel shared by bfs/sssp and their references.
pub const UNREACHED: u32 = u32::MAX;
