//! k-core decomposition: finds the maximal subgraph in which every vertex
//! has degree ≥ k. Data-driven push on the symmetrized graph: when a vertex
//! drops below `k` it dies once and pushes a degree decrement to each
//! neighbor (add-reduction with reset, unlike the idempotent min apps).
//!
//! Death is *monotone*: once `deg < k` a vertex is out regardless of
//! message order, so any proxy may take the death decision locally; each
//! proxy handles the death exactly once for its own local edges, so every
//! edge's decrement is pushed exactly once globally.

use dirgl_core::{InitCtx, Style, VertexProgram};
use dirgl_graph::csr::VertexId;

const ALIVE_BIT: u32 = 1 << 31;
const DEG_MASK: u32 = ALIVE_BIT - 1;

/// Per-proxy kcore state.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KCoreState {
    /// Current (synced) degree.
    pub deg: u32,
    /// Decrements accumulated since the last absorb/reduce.
    pub pending: u32,
    /// Still in the candidate core.
    pub alive: bool,
    /// This proxy already pushed its local death decrements.
    pub death_handled: bool,
}

/// k-core with threshold `k`.
#[derive(Clone, Copy, Debug)]
pub struct KCore {
    /// Minimum degree to stay in the core.
    pub k: u32,
}

impl KCore {
    /// k-core with the given threshold.
    pub fn new(k: u32) -> KCore {
        assert!(k >= 1);
        KCore { k }
    }
}

impl VertexProgram for KCore {
    type State = KCoreState;
    type Wire = u32;

    fn name(&self) -> &'static str {
        "kcore"
    }

    fn permutation_safe(&self) -> bool {
        // Exact, order-independent integer reduction: a permuted
        // kernel layout produces bit-identical values.
        true
    }

    fn style(&self) -> Style {
        Style::PushDataDriven
    }

    fn needs_symmetric(&self) -> bool {
        true
    }

    fn init_state(&self, gv: VertexId, ctx: &InitCtx<'_>) -> KCoreState {
        KCoreState {
            deg: ctx.out_degrees[gv as usize],
            pending: 0,
            alive: true,
            death_handled: false,
        }
    }

    fn initially_active(&self, gv: VertexId, ctx: &InitCtx<'_>) -> bool {
        ctx.out_degrees[gv as usize] < self.k
    }

    fn begin_push(&self, state: &mut KCoreState) -> bool {
        if state.alive && state.deg < self.k {
            state.alive = false;
        }
        if !state.alive && !state.death_handled {
            state.death_handled = true;
            return true;
        }
        false
    }

    fn edge_msg(&self, _state: &KCoreState, _weight: u32) -> Option<u32> {
        Some(1)
    }

    fn accumulate(&self, state: &mut KCoreState, msg: u32) -> bool {
        if msg > 0 {
            state.pending += msg;
            true
        } else {
            false
        }
    }

    fn absorb(&self, state: &mut KCoreState) -> bool {
        if state.pending == 0 {
            return false;
        }
        let was_candidate = state.alive && state.deg >= self.k;
        state.deg = state.deg.saturating_sub(state.pending);
        state.pending = 0;
        was_candidate && state.deg < self.k
    }

    fn take_delta(&self, state: &mut KCoreState) -> u32 {
        let d = state.pending;
        state.pending = 0;
        d
    }

    fn canonical(&self, state: &KCoreState) -> u32 {
        (state.deg & DEG_MASK) | if state.alive { ALIVE_BIT } else { 0 }
    }

    fn set_canonical(&self, state: &mut KCoreState, v: u32) -> bool {
        let alive = v & ALIVE_BIT != 0;
        let deg = v & DEG_MASK;
        let changed = state.deg != deg || state.alive != alive;
        state.deg = deg;
        // Death is monotone: never resurrect a locally-dead proxy.
        state.alive &= alive;
        changed
    }

    fn output(&self, state: &KCoreState) -> f64 {
        if state.alive {
            1.0
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dies_once_and_pushes_once() {
        let kc = KCore::new(3);
        let mut s = KCoreState {
            deg: 2,
            pending: 0,
            alive: true,
            death_handled: false,
        };
        assert!(kc.begin_push(&mut s)); // dies, pushes
        assert!(!s.alive && s.death_handled);
        assert!(!kc.begin_push(&mut s)); // never twice
    }

    #[test]
    fn healthy_vertex_does_not_push() {
        let kc = KCore::new(3);
        let mut s = KCoreState {
            deg: 5,
            pending: 0,
            alive: true,
            death_handled: false,
        };
        assert!(!kc.begin_push(&mut s));
        assert!(s.alive);
    }

    #[test]
    fn decrements_accumulate_and_absorb_detects_death() {
        let kc = KCore::new(3);
        let mut s = KCoreState {
            deg: 4,
            pending: 0,
            alive: true,
            death_handled: false,
        };
        assert!(kc.accumulate(&mut s, 1));
        assert!(kc.accumulate(&mut s, 1));
        assert!(kc.absorb(&mut s)); // 4 - 2 = 2 < 3: newly below threshold
        assert_eq!((s.deg, s.pending), (2, 0));
        // Further decrements on an already-dying vertex do not re-report.
        kc.accumulate(&mut s, 1);
        assert!(!kc.absorb(&mut s));
    }

    #[test]
    fn canonical_roundtrip_preserves_death_monotonicity() {
        let kc = KCore::new(3);
        let master = KCoreState {
            deg: 7,
            pending: 0,
            alive: true,
            death_handled: false,
        };
        let wire = kc.canonical(&master);
        let mut mirror = KCoreState {
            deg: 9,
            pending: 0,
            alive: false,
            death_handled: true,
        };
        assert!(kc.set_canonical(&mut mirror, wire));
        assert_eq!(mirror.deg, 7);
        assert!(!mirror.alive, "broadcast must not resurrect");
    }

    #[test]
    fn delta_is_take_and_reset() {
        let kc = KCore::new(2);
        let mut s = KCoreState {
            deg: 4,
            pending: 3,
            alive: true,
            death_handled: false,
        };
        assert_eq!(kc.take_delta(&mut s), 3);
        assert_eq!(kc.take_delta(&mut s), 0);
    }
}
