//! Residual pagerank: topology-driven **pull** (§IV-B: "topology-driven
//! execution for pr (residual based algorithm)").
//!
//! Every round, every vertex pulls `α · residual(u) / outdeg(u)` from each
//! in-neighbor `u`, then folds: `rank += residual; residual = pulled sum`.
//! Convergence when no vertex's new residual exceeds the tolerance. Because
//! work per vertex is its **in-degree**, the paper's huge-max-in-degree web
//! crawls make this the benchmark where ALB beats TWC.

use dirgl_core::{InitCtx, Style, VertexProgram};
use dirgl_graph::csr::VertexId;

/// Per-proxy pagerank state.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PrState {
    /// Accumulated rank.
    pub rank: f32,
    /// Mass to be both applied to rank and propagated this round.
    pub residual: f32,
    /// Incoming mass pulled this round (the add accumulator).
    pub acc: f32,
    /// Precomputed `α / outdeg` (0 for sinks).
    pub kappa: f32,
}

/// Residual pagerank.
#[derive(Clone, Copy, Debug)]
pub struct PageRank {
    /// Damping factor (the paper's frameworks all use 0.85).
    pub alpha: f32,
    /// Residual threshold below which mass is dropped.
    pub tolerance: f32,
    /// Round cap (Lux-parity runs fix the round count instead).
    pub rounds_cap: u32,
}

impl Default for PageRank {
    fn default() -> Self {
        PageRank {
            alpha: 0.85,
            tolerance: 1e-4,
            rounds_cap: 1000,
        }
    }
}

impl PageRank {
    /// Standard configuration.
    pub fn new() -> PageRank {
        Self::default()
    }

    /// Fixed round count (used for Lux parity runs, which have no
    /// convergence check).
    pub fn with_rounds_cap(mut self, cap: u32) -> PageRank {
        self.rounds_cap = cap;
        self
    }
}

impl VertexProgram for PageRank {
    type State = PrState;
    type Wire = f32;

    fn name(&self) -> &'static str {
        "pagerank"
    }

    fn style(&self) -> Style {
        Style::PullTopologyDriven
    }

    fn init_state(&self, gv: VertexId, ctx: &InitCtx<'_>) -> PrState {
        let d = ctx.out_degrees[gv as usize];
        PrState {
            rank: 0.0,
            residual: 1.0 - self.alpha,
            acc: 0.0,
            kappa: if d == 0 { 0.0 } else { self.alpha / d as f32 },
        }
    }

    fn initially_active(&self, _gv: VertexId, _ctx: &InitCtx<'_>) -> bool {
        true // topology-driven: ignored, every vertex computes every round
    }

    fn edge_msg(&self, _state: &PrState, _weight: u32) -> Option<f32> {
        None // pull-only program
    }

    fn pull_contribution(&self, neighbor: &PrState, _weight: u32) -> Option<f32> {
        let c = neighbor.residual * neighbor.kappa;
        (c != 0.0).then_some(c)
    }

    fn accumulate(&self, state: &mut PrState, msg: f32) -> bool {
        // Unconditional add: a zero message adds +0.0, which is a bitwise
        // no-op because `acc` is a sum of non-negative contributions and
        // never -0.0 — exactly the `inert_contribution` contract, so the
        // pull body can fold contributions branch-free.
        state.acc += msg;
        msg != 0.0
    }

    fn inert_contribution(&self) -> Option<f32> {
        Some(0.0)
    }

    fn absorb(&self, state: &mut PrState) -> bool {
        let had = state.residual;
        state.rank += state.residual;
        if state.acc > self.tolerance {
            state.residual = state.acc;
            state.acc = 0.0;
        } else {
            // Park sub-tolerance mass in the accumulator instead of
            // dropping it: asynchronous execution delivers contributions in
            // small fragments, and dropping each fragment would bleed rank
            // mass systematically. Parked mass propagates once later
            // fragments push it over the threshold; at quiescence at most
            // `tolerance` per vertex remains unapplied.
            state.residual = 0.0;
        }
        // "Changed" covers the transition *to* zero as well: mirrors must
        // learn the residual drained, or they would re-serve stale mass
        // forever. The engine broadcasts on true and stops when no master
        // returns true two rounds in a row (0 -> 0 is false).
        had > 0.0 || state.residual > 0.0
    }

    fn take_delta(&self, state: &mut PrState) -> f32 {
        let d = state.acc;
        state.acc = 0.0;
        d
    }

    fn canonical(&self, state: &PrState) -> f32 {
        state.residual
    }

    fn set_canonical(&self, state: &mut PrState, v: f32) -> bool {
        if state.residual != v {
            state.residual = v;
            true
        } else {
            false
        }
    }

    fn merge_canonical_async(&self, state: &mut PrState, v: f32) -> bool {
        // Local rounds are not aligned with the master's: each broadcast
        // carries one residual *generation*, delivered additively and
        // consumed by exactly one local pull round.
        if v != 0.0 {
            state.residual += v;
            true
        } else {
            false
        }
    }

    fn consume_after_pull(&self, state: &mut PrState) {
        state.residual = 0.0;
    }

    fn max_rounds(&self) -> u32 {
        self.rounds_cap
    }

    fn output(&self, state: &PrState) -> f64 {
        state.rank as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_scales_kappa_by_out_degree() {
        let degs = vec![4, 0];
        let c = InitCtx::new(2, &degs);
        let pr = PageRank::new();
        let s = pr.init_state(0, &c);
        assert!((s.kappa - 0.85 / 4.0).abs() < 1e-7);
        assert!((s.residual - 0.15).abs() < 1e-7);
        // Sinks contribute nothing.
        let sink = pr.init_state(1, &c);
        assert_eq!(sink.kappa, 0.0);
        assert_eq!(pr.pull_contribution(&sink, 0), None);
    }

    #[test]
    fn absorb_moves_residual_to_rank_and_drops_tiny_mass() {
        let pr = PageRank::new();
        let mut s = PrState {
            rank: 0.0,
            residual: 0.15,
            acc: 0.05,
            kappa: 0.1,
        };
        assert!(pr.absorb(&mut s));
        assert!((s.rank - 0.15).abs() < 1e-7);
        assert!((s.residual - 0.05).abs() < 1e-7);
        assert_eq!(s.acc, 0.0);
        // Below-tolerance mass drains; the drain itself still reports
        // "changed" (mirrors must learn the residual went to zero), and the
        // following round is quiet.
        s.acc = 1e-6;
        assert!(pr.absorb(&mut s));
        assert_eq!(s.residual, 0.0);
        assert!(!pr.absorb(&mut s));
    }

    #[test]
    fn async_merge_is_additive_and_consumed() {
        let pr = PageRank::new();
        let mut s = PrState {
            rank: 0.0,
            residual: 0.1,
            acc: 0.0,
            kappa: 0.2,
        };
        assert!(pr.merge_canonical_async(&mut s, 0.05));
        assert!((s.residual - 0.15).abs() < 1e-7);
        assert!(!pr.merge_canonical_async(&mut s, 0.0));
        pr.consume_after_pull(&mut s);
        assert_eq!(s.residual, 0.0);
    }

    #[test]
    fn rounds_cap_builder() {
        let pr = PageRank::new().with_rounds_cap(42);
        assert_eq!(pr.max_rounds(), 42);
    }
}
