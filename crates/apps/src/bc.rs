//! Betweenness centrality (single source, unweighted) — an extension
//! beyond the paper's five benchmarks; it is part of the D-IrGL/Gluon
//! application suite the paper's framework comes from.
//!
//! Brandes' algorithm in two distributed phases:
//!
//! 1. **Forward** ([`BcForward`], data-driven push, BSP level-synchronous):
//!    computes each vertex's BFS level and shortest-path count σ. Path
//!    counting requires level alignment — a vertex's σ is final only once
//!    every same-level parent has pushed — so this phase is synchronous
//!    only (the runtime falls back to BSP automatically).
//! 2. **Backward** ([`BcBackward`], round-gated topology-driven push on the
//!    *transposed* graph): dependencies δ flow from the deepest level
//!    upwards, one level per global round; a vertex at level `L` pushes
//!    `(1 + δ) / σ` to its predecessors in round `Lmax - L`, and each
//!    predecessor folds `σ_pred × Σ` into its own δ.
//!
//! [`betweenness_centrality`] drives both phases, carrying `(level, σ)`
//! across via the runtime's auxiliary-data channel, and verifies against
//! [`reference_bc`] in the tests.

use std::sync::atomic::{AtomicU32, Ordering};

use dirgl_core::{
    InitCtx, Lanes, MultiSourceProgram, RunError, Runtime, Style, VertexProgram, LANE_WIDTH,
};
use dirgl_graph::csr::{Csr, VertexId};

use crate::UNREACHED;

/// Forward-phase proxy state.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BcFwdState {
    /// BFS level.
    pub dist: u32,
    /// Shortest-path count from the source.
    pub sigma: f32,
    /// Best candidate level received.
    pub acc_dist: u32,
    /// Path count accumulated at `acc_dist`.
    pub acc_sigma: f32,
}

/// Forward phase: levels + path counts.
#[derive(Clone, Copy, Debug)]
pub struct BcForward {
    /// Source vertex.
    pub source: VertexId,
}

impl VertexProgram for BcForward {
    type State = BcFwdState;
    /// `(candidate level, path count)`.
    type Wire = (u32, f32);

    fn name(&self) -> &'static str {
        "bc-forward"
    }

    fn style(&self) -> Style {
        Style::PushDataDriven
    }

    fn supports_async(&self) -> bool {
        false // sigma counting requires level-aligned rounds
    }

    fn init_state(&self, gv: VertexId, _ctx: &InitCtx<'_>) -> BcFwdState {
        if gv == self.source {
            BcFwdState {
                dist: 0,
                sigma: 1.0,
                acc_dist: UNREACHED,
                acc_sigma: 0.0,
            }
        } else {
            BcFwdState {
                dist: UNREACHED,
                sigma: 0.0,
                acc_dist: UNREACHED,
                acc_sigma: 0.0,
            }
        }
    }

    fn initially_active(&self, gv: VertexId, _ctx: &InitCtx<'_>) -> bool {
        gv == self.source
    }

    fn edge_msg(&self, state: &BcFwdState, _w: u32) -> Option<(u32, f32)> {
        (state.dist != UNREACHED && state.sigma > 0.0).then(|| (state.dist + 1, state.sigma))
    }

    fn accumulate(&self, state: &mut BcFwdState, (d, s): (u32, f32)) -> bool {
        if d >= state.dist {
            return false; // already settled at a level <= candidate
        }
        match d.cmp(&state.acc_dist) {
            std::cmp::Ordering::Less => {
                state.acc_dist = d;
                state.acc_sigma = s;
                true
            }
            std::cmp::Ordering::Equal => {
                state.acc_sigma += s;
                true
            }
            std::cmp::Ordering::Greater => false,
        }
    }

    fn absorb(&self, state: &mut BcFwdState) -> bool {
        if state.acc_dist < state.dist {
            state.dist = state.acc_dist;
            state.sigma = state.acc_sigma;
            state.acc_dist = UNREACHED;
            state.acc_sigma = 0.0;
            true
        } else {
            false
        }
    }

    fn take_delta(&self, state: &mut BcFwdState) -> (u32, f32) {
        let d = (state.acc_dist, state.acc_sigma);
        state.acc_dist = UNREACHED;
        state.acc_sigma = 0.0;
        d
    }

    fn canonical(&self, state: &BcFwdState) -> (u32, f32) {
        (state.dist, state.sigma)
    }

    fn set_canonical(&self, state: &mut BcFwdState, (d, s): (u32, f32)) -> bool {
        if d < state.dist || (d == state.dist && s != state.sigma) {
            state.dist = d;
            state.sigma = s;
            true
        } else {
            false
        }
    }

    fn output(&self, state: &BcFwdState) -> f64 {
        state.dist as f64
    }
}

/// The forward phase depends only on its source, so it batches
/// lane-for-lane — even its non-idempotent σ tie-adds stay bit-identical
/// per lane, because each lane's accumulate call sequence in a batched
/// round is exactly the scalar run's sequence.
impl MultiSourceProgram for BcForward {
    type Batched = Lanes<BcForward>;

    fn for_source(&self, source: VertexId) -> BcForward {
        BcForward { source }
    }

    fn batched(&self, sources: &[VertexId]) -> Lanes<BcForward> {
        Lanes::new(self, sources)
    }
}

/// Backward-phase proxy state.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BcBwdState {
    /// Level from the forward phase.
    pub level: u32,
    /// σ from the forward phase.
    pub sigma: f32,
    /// Accumulated dependency δ.
    pub delta: f32,
    /// Incoming `(1 + δ_child) / σ_child` sum.
    pub acc: f32,
}

/// Backward phase: round-gated dependency accumulation on the transpose.
pub struct BcBackward {
    /// Deepest level reached by the forward phase.
    pub max_level: u32,
    /// Level that pushes in the current round (set by `on_round_start`).
    target: AtomicU32,
}

impl BcBackward {
    /// Backward sweep from `max_level` down to 1.
    pub fn new(max_level: u32) -> BcBackward {
        BcBackward {
            max_level,
            target: AtomicU32::new(max_level),
        }
    }
}

impl VertexProgram for BcBackward {
    type State = BcBwdState;
    /// `(pusher's level, (1 + δ) / σ)` — receivers accept only child
    /// contributions (level == own level + 1).
    type Wire = (u32, f32);

    fn name(&self) -> &'static str {
        "bc-backward"
    }

    fn style(&self) -> Style {
        Style::PushTopologyDriven
    }

    fn on_round_start(&self, round: u32) {
        self.target
            .store(self.max_level.saturating_sub(round), Ordering::Relaxed);
    }

    fn init_state(&self, gv: VertexId, ctx: &InitCtx<'_>) -> BcBwdState {
        // aux word: level in the high 32 bits, σ bits in the low 32.
        let aux = ctx.aux.expect("BcBackward needs forward-phase aux data")[gv as usize];
        BcBwdState {
            level: (aux >> 32) as u32,
            sigma: f32::from_bits(aux as u32),
            delta: 0.0,
            acc: 0.0,
        }
    }

    fn initially_active(&self, _gv: VertexId, _ctx: &InitCtx<'_>) -> bool {
        true // topology-driven: ignored
    }

    fn begin_push(&self, state: &mut BcBwdState) -> bool {
        state.level != UNREACHED
            && state.level == self.target.load(Ordering::Relaxed)
            && state.sigma > 0.0
    }

    fn edge_msg(&self, state: &BcBwdState, _w: u32) -> Option<(u32, f32)> {
        Some((state.level, (1.0 + state.delta) / state.sigma))
    }

    fn accumulate(&self, state: &mut BcBwdState, (lvl, c): (u32, f32)) -> bool {
        // Only true BFS-tree children (one level deeper) contribute.
        if state.level != UNREACHED && lvl == state.level + 1 && c != 0.0 {
            state.acc += c;
            true
        } else {
            false
        }
    }

    fn absorb(&self, state: &mut BcBwdState) -> bool {
        if state.acc != 0.0 {
            state.delta += state.sigma * state.acc;
            state.acc = 0.0;
            true
        } else {
            false
        }
    }

    fn take_delta(&self, state: &mut BcBwdState) -> (u32, f32) {
        // Mirror partial sums ship as pseudo-child contributions tagged
        // with `level + 1` so the master's accumulate accepts them.
        let d = (state.level.saturating_add(1), state.acc);
        state.acc = 0.0;
        d
    }

    fn canonical(&self, state: &BcBwdState) -> (u32, f32) {
        (state.level, state.delta)
    }

    fn set_canonical(&self, state: &mut BcBwdState, (lvl, delta): (u32, f32)) -> bool {
        debug_assert_eq!(lvl, state.level);
        if state.delta != delta {
            state.delta = delta;
            true
        } else {
            false
        }
    }

    fn max_rounds(&self) -> u32 {
        self.max_level.max(1)
    }

    fn output(&self, state: &BcBwdState) -> f64 {
        state.delta as f64
    }
}

/// Result of a betweenness-centrality computation.
pub struct BcOutput {
    /// Dependency score δ per vertex (the source scores 0).
    pub scores: Vec<f64>,
    /// Forward-phase report.
    pub forward: dirgl_core::ExecutionReport,
    /// Backward-phase report.
    pub backward: dirgl_core::ExecutionReport,
}

/// Runs single-source betweenness centrality: forward on `g`, backward on
/// the transpose, both under `runtime`'s configuration (the phases run
/// bulk-synchronously regardless of the variant, as bc cannot run
/// asynchronously).
pub fn betweenness_centrality(
    runtime: &Runtime,
    g: &Csr,
    source: VertexId,
) -> Result<BcOutput, RunError> {
    // One-shot path: prepare both phase views here, then run the shared
    // driver. A resident service prepares them once and calls
    // [`betweenness_centrality_prepared`] directly.
    let fwd = runtime.prepare(g, false)?;
    let bwd = runtime.prepare(&g.transpose(), false)?;
    betweenness_centrality_prepared(runtime, &fwd, &bwd, source)
}

/// [`betweenness_centrality`] against resident prepared views: `fwd` is
/// the graph itself, `bwd` its transpose (both unsymmetrized). The
/// partition/plan build cost is the caller's, paid once and amortized over
/// any number of sources — the service shape.
pub fn betweenness_centrality_prepared(
    runtime: &Runtime,
    fwd: &dirgl_core::PreparedPartition,
    bwd: &dirgl_core::PreparedPartition,
    source: VertexId,
) -> Result<BcOutput, RunError> {
    // Forward: levels and path counts.
    let (fwd_out, fwd_states) = runtime
        .job(fwd, &BcForward { source })
        .execute_with_states()?;
    let max_level = fwd_states
        .iter()
        .map(|s| if s.dist == UNREACHED { 0 } else { s.dist })
        .max()
        .unwrap_or(0);
    let aux: Vec<u64> = fwd_states
        .iter()
        .map(|s| ((s.dist as u64) << 32) | s.sigma.to_bits() as u64)
        .collect();

    // Backward: dependency sweep on the transpose.
    let (bwd_out, bwd_states) = runtime
        .job(bwd, &BcBackward::new(max_level))
        .aux(&aux)
        .execute_with_states()?;

    let mut scores: Vec<f64> = bwd_states.iter().map(|s| s.delta as f64).collect();
    // Brandes excludes the source from its own dependency accumulation.
    scores[source as usize] = 0.0;
    Ok(BcOutput {
        scores,
        forward: fwd_out.report,
        backward: bwd_out.report,
    })
}

/// [`betweenness_centrality_prepared`] for a batch of sources with
/// K-lane batched phases: per ≤64-source chunk, **one** forward engine
/// run and **one** backward engine run advance every source. Each
/// lane's scores are identical to the corresponding single-source
/// driver's (the short-lane rounds a longer lane forces are rejected by
/// the child-level accumulate guard, so they never touch values).
/// The per-chunk phase reports are shared: every output in a chunk
/// carries the same forward/backward report.
pub fn batched_betweenness_centrality_prepared(
    runtime: &Runtime,
    fwd: &dirgl_core::PreparedPartition,
    bwd: &dirgl_core::PreparedPartition,
    sources: &[VertexId],
) -> Result<Vec<BcOutput>, RunError> {
    let mut outs = Vec::with_capacity(sources.len());
    for chunk in sources.chunks(LANE_WIDTH) {
        // Forward: one batched run computes every lane's levels and σ.
        let fwd_prog = Lanes::new(&BcForward { source: chunk[0] }, chunk);
        let (fwd_out, fwd_states) = runtime.job(fwd, &fwd_prog).execute_with_states()?;

        // Backward: each lane gets its own round gate (its forward max
        // level) and its own aux words (its forward levels and σ).
        let mut bwd_progs = Vec::with_capacity(chunk.len());
        let mut lane_aux = Vec::with_capacity(chunk.len());
        for l in 0..chunk.len() {
            let max_level = fwd_states
                .iter()
                .map(|s| {
                    let d = s.lane[l].dist;
                    if d == UNREACHED {
                        0
                    } else {
                        d
                    }
                })
                .max()
                .unwrap_or(0);
            let aux: Vec<u64> = fwd_states
                .iter()
                .map(|s| ((s.lane[l].dist as u64) << 32) | s.lane[l].sigma.to_bits() as u64)
                .collect();
            bwd_progs.push(BcBackward::new(max_level));
            lane_aux.push(aux);
        }
        let mut bwd_prog = Lanes::from_programs(bwd_progs);
        for (l, aux) in lane_aux.into_iter().enumerate() {
            bwd_prog.set_lane_aux(l, aux);
        }
        let (bwd_out, bwd_states) = runtime.job(bwd, &bwd_prog).execute_with_states()?;

        for (l, &src) in chunk.iter().enumerate() {
            let mut scores: Vec<f64> = bwd_states.iter().map(|s| s.lane[l].delta as f64).collect();
            scores[src as usize] = 0.0;
            outs.push(BcOutput {
                scores,
                forward: fwd_out.report.clone(),
                backward: bwd_out.report.clone(),
            });
        }
    }
    Ok(outs)
}

/// Sequential Brandes reference (single source, unweighted).
pub fn reference_bc(g: &Csr, source: VertexId) -> Vec<f64> {
    let n = g.num_vertices() as usize;
    let mut dist = vec![UNREACHED; n];
    let mut sigma = vec![0.0f64; n];
    let mut order: Vec<u32> = Vec::new();
    dist[source as usize] = 0;
    sigma[source as usize] = 1.0;
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        order.push(u);
        for &v in g.neighbors(u) {
            if dist[v as usize] == UNREACHED {
                dist[v as usize] = dist[u as usize] + 1;
                queue.push_back(v);
            }
            if dist[v as usize] == dist[u as usize] + 1 {
                sigma[v as usize] += sigma[u as usize];
            }
        }
    }
    let mut delta = vec![0.0f64; n];
    for &w in order.iter().rev() {
        for &v in g.neighbors(w) {
            if dist[v as usize] == dist[w as usize] + 1 && sigma[v as usize] > 0.0 {
                delta[w as usize] +=
                    sigma[w as usize] / sigma[v as usize] * (1.0 + delta[v as usize]);
            }
        }
    }
    delta[source as usize] = 0.0;
    delta
}

#[cfg(test)]
mod tests {
    use super::*;
    use dirgl_core::{RunConfig, Variant};
    use dirgl_gpusim::Platform;
    use dirgl_partition::Policy;

    #[test]
    fn reference_on_a_diamond() {
        // 0 -> {1,2} -> 3: two shortest paths through 1 and 2.
        let mut b = dirgl_graph::csr::CsrBuilder::new(4);
        b.add(0, 1);
        b.add(0, 2);
        b.add(1, 3);
        b.add(2, 3);
        let g = b.build();
        let bc = reference_bc(&g, 0);
        assert_eq!(bc[0], 0.0);
        assert!((bc[1] - 0.5).abs() < 1e-12);
        assert!((bc[2] - 0.5).abs() < 1e-12);
        assert_eq!(bc[3], 0.0);
    }

    #[test]
    fn distributed_bc_matches_brandes() {
        let g = dirgl_graph::RmatConfig::new(8, 6).seed(11).generate();
        let src = g.max_out_degree_vertex();
        let want = reference_bc(&g, src);
        for policy in [Policy::Oec, Policy::Iec, Policy::Cvc] {
            for variant in [Variant::var3(), Variant::var4()] {
                let rt = Runtime::new(Platform::bridges(4), RunConfig::new(policy, variant));
                let out = betweenness_centrality(&rt, &g, src).unwrap();
                for (v, (got, w)) in out.scores.iter().zip(&want).enumerate() {
                    assert!(
                        (got - w).abs() < 1e-3 * (1.0 + w.abs()),
                        "{policy}/{}: vertex {v}: {got} vs {w}",
                        variant.label()
                    );
                }
            }
        }
    }

    #[test]
    fn batched_bc_lanes_match_single_source_runs() {
        let g = dirgl_graph::RmatConfig::new(8, 6).seed(17).generate();
        let n = g.num_vertices();
        let sources: Vec<u32> = (0..5)
            .map(|k| (g.max_out_degree_vertex() + k * (n / 7 + 1)) % n)
            .collect();
        let rt = Runtime::new(
            Platform::bridges(4),
            RunConfig::new(Policy::Cvc, Variant::var4()),
        );
        let fwd = rt.prepare(&g, false).unwrap();
        let bwd = rt.prepare(&g.transpose(), false).unwrap();
        let batched = batched_betweenness_centrality_prepared(&rt, &fwd, &bwd, &sources).unwrap();
        assert_eq!(batched.len(), sources.len());
        for (k, &src) in sources.iter().enumerate() {
            let solo = betweenness_centrality_prepared(&rt, &fwd, &bwd, src).unwrap();
            let same = batched[k]
                .scores
                .iter()
                .zip(&solo.scores)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "lane {k} (source {src}) diverged from its solo run");
        }
    }

    #[test]
    fn backward_gating_by_round() {
        let b = BcBackward::new(5);
        b.on_round_start(0);
        let mut deep = BcBwdState {
            level: 5,
            sigma: 2.0,
            delta: 0.0,
            acc: 0.0,
        };
        let mut shallow = BcBwdState {
            level: 3,
            sigma: 1.0,
            delta: 0.0,
            acc: 0.0,
        };
        assert!(b.begin_push(&mut deep));
        assert!(!b.begin_push(&mut shallow));
        b.on_round_start(2);
        assert!(b.begin_push(&mut shallow));
    }

    #[test]
    fn forward_counts_paths() {
        let f = BcForward { source: 0 };
        let mut s = BcFwdState {
            dist: UNREACHED,
            sigma: 0.0,
            acc_dist: UNREACHED,
            acc_sigma: 0.0,
        };
        assert!(f.accumulate(&mut s, (2, 1.0)));
        assert!(f.accumulate(&mut s, (2, 3.0)));
        assert!(!f.accumulate(&mut s, (3, 1.0))); // worse level ignored
        assert!(f.accumulate(&mut s, (1, 2.0))); // better level replaces
        assert!(f.absorb(&mut s));
        assert_eq!(s.dist, 1);
        assert_eq!(s.sigma, 2.0);
    }
}
