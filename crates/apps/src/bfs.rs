//! Breadth-first search: data-driven push, min-reduction on level.

use dirgl_core::{InitCtx, MsBfs, MultiSourceProgram, Style, VertexProgram};
use dirgl_graph::csr::{Csr, VertexId};

use crate::UNREACHED;

/// Per-proxy bfs state: the canonical level and the min accumulator.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BfsState {
    /// Best known level (canonical on masters).
    pub dist: u32,
    /// Best candidate received since the last absorb.
    pub acc: u32,
}

/// Breadth-first search from `source`.
#[derive(Clone, Copy, Debug)]
pub struct Bfs {
    /// Root vertex of the traversal.
    pub source: VertexId,
}

impl Bfs {
    /// BFS from an explicit source.
    pub fn new(source: VertexId) -> Bfs {
        Bfs { source }
    }

    /// The paper's convention: "the vertex with the highest out-degree is
    /// used as the source vertex for bfs and sssp".
    pub fn from_max_out_degree(g: &Csr) -> Bfs {
        Bfs {
            source: g.max_out_degree_vertex(),
        }
    }
}

impl VertexProgram for Bfs {
    type State = BfsState;
    type Wire = u32;

    fn name(&self) -> &'static str {
        "bfs"
    }

    fn permutation_safe(&self) -> bool {
        // Exact, order-independent integer reduction: a permuted
        // kernel layout produces bit-identical values.
        true
    }

    fn style(&self) -> Style {
        Style::PushDataDriven
    }

    fn init_state(&self, gv: VertexId, _ctx: &InitCtx<'_>) -> BfsState {
        let d = if gv == self.source { 0 } else { UNREACHED };
        BfsState {
            dist: d,
            acc: UNREACHED,
        }
    }

    fn initially_active(&self, gv: VertexId, _ctx: &InitCtx<'_>) -> bool {
        gv == self.source
    }

    fn edge_msg(&self, state: &BfsState, _weight: u32) -> Option<u32> {
        (state.dist != UNREACHED).then(|| state.dist + 1)
    }

    fn accumulate(&self, state: &mut BfsState, msg: u32) -> bool {
        if msg < state.acc && msg < state.dist {
            state.acc = msg;
            true
        } else {
            false
        }
    }

    fn absorb(&self, state: &mut BfsState) -> bool {
        if state.acc < state.dist {
            state.dist = state.acc;
            true
        } else {
            false
        }
    }

    fn take_delta(&self, state: &mut BfsState) -> u32 {
        let d = state.acc.min(state.dist);
        state.acc = UNREACHED;
        d
    }

    fn canonical(&self, state: &BfsState) -> u32 {
        state.dist
    }

    fn set_canonical(&self, state: &mut BfsState, v: u32) -> bool {
        if v < state.dist {
            state.dist = v;
            true
        } else {
            false
        }
    }

    fn output(&self, state: &BfsState) -> f64 {
        state.dist as f64
    }
}

/// BFS batches as [`MsBfs`]: mask-only wires, levels derived from the
/// round clock — see the core docs for why the generic value-lane form
/// is never the right encoding for bfs.
impl MultiSourceProgram for Bfs {
    type Batched = MsBfs;

    fn for_source(&self, source: VertexId) -> Bfs {
        Bfs::new(source)
    }

    fn batched(&self, sources: &[VertexId]) -> MsBfs {
        MsBfs::new(sources)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> Vec<u32> {
        vec![1; 4]
    }

    #[test]
    fn init_and_activation() {
        let degs = ctx();
        let c = InitCtx::new(4, &degs);
        let b = Bfs::new(2);
        assert_eq!(b.init_state(2, &c).dist, 0);
        assert_eq!(b.init_state(0, &c).dist, UNREACHED);
        assert!(b.initially_active(2, &c));
        assert!(!b.initially_active(0, &c));
    }

    #[test]
    fn min_semantics() {
        let b = Bfs::new(0);
        let mut s = BfsState {
            dist: 10,
            acc: UNREACHED,
        };
        assert!(b.accumulate(&mut s, 5));
        assert!(!b.accumulate(&mut s, 7)); // worse than acc
        assert!(b.absorb(&mut s));
        assert_eq!(s.dist, 5);
        assert!(!b.absorb(&mut s)); // idempotent
        assert_eq!(b.edge_msg(&s, 99), Some(6)); // weight ignored
    }

    #[test]
    fn delta_resets_accumulator() {
        let b = Bfs::new(0);
        let mut s = BfsState { dist: 4, acc: 3 };
        assert_eq!(b.take_delta(&mut s), 3);
        assert_eq!(s.acc, UNREACHED);
        // Untouched mirror ships its canonical view.
        let mut t = BfsState {
            dist: 7,
            acc: UNREACHED,
        };
        assert_eq!(b.take_delta(&mut t), 7);
    }

    #[test]
    fn unreached_vertices_push_nothing() {
        let b = Bfs::new(0);
        let s = BfsState {
            dist: UNREACHED,
            acc: UNREACHED,
        };
        assert_eq!(b.edge_msg(&s, 1), None);
    }
}
