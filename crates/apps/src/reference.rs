//! Sequential reference implementations.
//!
//! Every distributed result in the test suites is checked against these.
//! Each takes the *raw* (directed) input and applies the same
//! preprocessing the runtime does (symmetrization for cc/kcore).

use std::collections::BinaryHeap;

use dirgl_graph::csr::{Csr, VertexId};

use crate::UNREACHED;

/// BFS levels from `src`; `UNREACHED` where unreachable.
pub fn bfs(g: &Csr, src: VertexId) -> Vec<u32> {
    let n = g.num_vertices() as usize;
    let mut dist = vec![UNREACHED; n];
    dist[src as usize] = 0;
    let mut frontier = vec![src];
    let mut next = Vec::new();
    let mut level = 0;
    while !frontier.is_empty() {
        level += 1;
        for &u in &frontier {
            for &v in g.neighbors(u) {
                if dist[v as usize] == UNREACHED {
                    dist[v as usize] = level;
                    next.push(v);
                }
            }
        }
        std::mem::swap(&mut frontier, &mut next);
        next.clear();
    }
    dist
}

/// Dijkstra distances from `src` using the graph's weights (floored at 1,
/// matching the engine); `UNREACHED` where unreachable.
pub fn sssp(g: &Csr, src: VertexId) -> Vec<u32> {
    let n = g.num_vertices() as usize;
    let mut dist = vec![UNREACHED; n];
    dist[src as usize] = 0;
    let mut heap = BinaryHeap::new();
    heap.push(std::cmp::Reverse((0u32, src)));
    while let Some(std::cmp::Reverse((d, u))) = heap.pop() {
        if d > dist[u as usize] {
            continue;
        }
        for (v, w) in g.edges(u) {
            let nd = d.saturating_add(w.max(1));
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                heap.push(std::cmp::Reverse((nd, v)));
            }
        }
    }
    dist
}

/// Weakly connected components: each vertex labelled with the minimum
/// global id in its component (the label-propagation fixpoint).
pub fn cc(g: &Csr) -> Vec<u32> {
    let n = g.num_vertices() as usize;
    // Union-find over the undirected view.
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            parent[x as usize] = parent[parent[x as usize] as usize];
            x = parent[x as usize];
        }
        x
    }
    for u in 0..n as u32 {
        for &v in g.neighbors(u) {
            let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
            if ru != rv {
                // Union by id keeps the minimum as the root.
                let (lo, hi) = (ru.min(rv), ru.max(rv));
                parent[hi as usize] = lo;
            }
        }
    }
    (0..n as u32).map(|v| find(&mut parent, v)).collect()
}

/// k-core membership (1 = in core) by sequential peeling on the
/// symmetrized graph.
pub fn kcore(g: &Csr, k: u32) -> Vec<bool> {
    let sym = g.symmetrize();
    let n = sym.num_vertices() as usize;
    let mut deg: Vec<u32> = (0..n as u32).map(|v| sym.out_degree(v)).collect();
    let mut alive = vec![true; n];
    let mut queue: Vec<u32> = (0..n as u32).filter(|&v| deg[v as usize] < k).collect();
    let mut head = 0;
    while head < queue.len() {
        let u = queue[head];
        head += 1;
        if !alive[u as usize] {
            continue;
        }
        alive[u as usize] = false;
        for &v in sym.neighbors(u) {
            if alive[v as usize] {
                deg[v as usize] -= 1;
                if deg[v as usize] == k - 1 {
                    queue.push(v);
                }
            }
        }
    }
    alive
}

/// Residual pagerank in f64 with the same scheme as the distributed
/// program, run to `tolerance` (or `max_rounds`).
pub fn pagerank(g: &Csr, alpha: f64, tolerance: f64, max_rounds: u32) -> Vec<f64> {
    let n = g.num_vertices() as usize;
    let rev = g.transpose();
    let outdeg: Vec<u32> = (0..n as u32).map(|v| g.out_degree(v)).collect();
    let mut rank = vec![0.0f64; n];
    let mut residual = vec![1.0 - alpha; n];
    for _ in 0..max_rounds {
        let mut next = vec![0.0f64; n];
        for v in 0..n as u32 {
            for &u in rev.neighbors(v) {
                if outdeg[u as usize] > 0 {
                    next[v as usize] += alpha * residual[u as usize] / outdeg[u as usize] as f64;
                }
            }
        }
        let mut any = false;
        for v in 0..n {
            rank[v] += residual[v];
            residual[v] = if next[v] > tolerance {
                any = true;
                next[v]
            } else {
                0.0
            };
        }
        if !any {
            break;
        }
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;
    use dirgl_graph::csr::CsrBuilder;

    fn path(n: u32) -> Csr {
        let mut b = CsrBuilder::new(n);
        for i in 0..n - 1 {
            b.add(i, i + 1);
        }
        b.build()
    }

    #[test]
    fn bfs_on_path() {
        let d = bfs(&path(5), 0);
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
        let d = bfs(&path(5), 2);
        assert_eq!(d, vec![UNREACHED, UNREACHED, 0, 1, 2]);
    }

    #[test]
    fn sssp_prefers_cheap_detour() {
        // 0->1 (10), 0->2 (1), 2->1 (2)
        let mut b = CsrBuilder::new(3);
        b.add_weighted(0, 1, 10);
        b.add_weighted(0, 2, 1);
        b.add_weighted(2, 1, 2);
        let d = sssp(&b.build(), 0);
        assert_eq!(d, vec![0, 3, 1]);
    }

    #[test]
    fn cc_labels_are_min_ids() {
        // Components: {0,1,2} (via directed edges), {3}, {4,5}
        let mut b = CsrBuilder::new(6);
        b.add(1, 0);
        b.add(1, 2);
        b.add(5, 4);
        let labels = cc(&b.build());
        assert_eq!(labels, vec![0, 0, 0, 3, 4, 4]);
    }

    #[test]
    fn kcore_peels_a_tail() {
        // Triangle 0-1-2 plus a pendant 3 attached to 0: 2-core keeps the
        // triangle only.
        let mut b = CsrBuilder::new(4);
        b.add(0, 1);
        b.add(1, 2);
        b.add(2, 0);
        b.add(0, 3);
        let alive = kcore(&b.build(), 2);
        assert_eq!(alive, vec![true, true, true, false]);
    }

    #[test]
    fn pagerank_sums_to_vertex_count_ish() {
        let g = dirgl_graph::RmatConfig::new(8, 4).seed(2).generate();
        let r = pagerank(&g, 0.85, 1e-9, 500);
        let total: f64 = r.iter().sum();
        // With sink-mass loss the sum lands below n but in its vicinity.
        let n = g.num_vertices() as f64;
        assert!(total > 0.3 * n && total <= n + 1.0, "total={total} n={n}");
        assert!(r.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn pagerank_hub_outranks_leaf() {
        // star: leaves point at the hub.
        let mut b = CsrBuilder::new(5);
        for i in 1..5 {
            b.add(i, 0);
        }
        let r = pagerank(&b.build(), 0.85, 1e-10, 200);
        assert!(r[0] > r[1] * 2.0);
    }
}
