//! Single-source shortest paths: data-driven push over the randomized edge
//! weights, min-reduction on distance (distributed Bellman-Ford).

use dirgl_core::{InitCtx, Lanes, MultiSourceProgram, Style, VertexProgram};
use dirgl_graph::csr::{Csr, VertexId};

use crate::UNREACHED;

/// Per-proxy sssp state.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SsspState {
    /// Best known distance.
    pub dist: u32,
    /// Best candidate received since the last absorb.
    pub acc: u32,
}

/// Shortest paths from `source`.
#[derive(Clone, Copy, Debug)]
pub struct Sssp {
    /// Root vertex.
    pub source: VertexId,
}

impl Sssp {
    /// SSSP from an explicit source.
    pub fn new(source: VertexId) -> Sssp {
        Sssp { source }
    }

    /// The paper's source convention (highest out-degree vertex).
    pub fn from_max_out_degree(g: &Csr) -> Sssp {
        Sssp {
            source: g.max_out_degree_vertex(),
        }
    }
}

impl VertexProgram for Sssp {
    type State = SsspState;
    type Wire = u32;

    fn name(&self) -> &'static str {
        "sssp"
    }

    fn permutation_safe(&self) -> bool {
        // Exact, order-independent integer reduction: a permuted
        // kernel layout produces bit-identical values.
        true
    }

    fn style(&self) -> Style {
        Style::PushDataDriven
    }

    fn uses_weights(&self) -> bool {
        true
    }

    fn init_state(&self, gv: VertexId, _ctx: &InitCtx<'_>) -> SsspState {
        let d = if gv == self.source { 0 } else { UNREACHED };
        SsspState {
            dist: d,
            acc: UNREACHED,
        }
    }

    fn initially_active(&self, gv: VertexId, _ctx: &InitCtx<'_>) -> bool {
        gv == self.source
    }

    fn edge_msg(&self, state: &SsspState, weight: u32) -> Option<u32> {
        (state.dist != UNREACHED).then(|| state.dist.saturating_add(weight.max(1)))
    }

    fn accumulate(&self, state: &mut SsspState, msg: u32) -> bool {
        if msg < state.acc && msg < state.dist {
            state.acc = msg;
            true
        } else {
            false
        }
    }

    fn absorb(&self, state: &mut SsspState) -> bool {
        if state.acc < state.dist {
            state.dist = state.acc;
            true
        } else {
            false
        }
    }

    fn take_delta(&self, state: &mut SsspState) -> u32 {
        let d = state.acc.min(state.dist);
        state.acc = UNREACHED;
        d
    }

    fn canonical(&self, state: &SsspState) -> u32 {
        state.dist
    }

    fn set_canonical(&self, state: &mut SsspState, v: u32) -> bool {
        if v < state.dist {
            state.dist = v;
            true
        } else {
            false
        }
    }

    fn output(&self, state: &SsspState) -> f64 {
        state.dist as f64
    }
}

/// SSSP semantics depend only on the source, so it batches lane-for-lane.
impl MultiSourceProgram for Sssp {
    type Batched = Lanes<Sssp>;

    fn for_source(&self, source: VertexId) -> Sssp {
        Sssp::new(source)
    }

    fn batched(&self, sources: &[VertexId]) -> Lanes<Sssp> {
        Lanes::new(self, sources)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_is_applied_with_floor_one() {
        let s = Sssp::new(0);
        let st = SsspState {
            dist: 10,
            acc: UNREACHED,
        };
        assert_eq!(s.edge_msg(&st, 5), Some(15));
        // Zero weights (unweighted graphs) degrade to bfs semantics.
        assert_eq!(s.edge_msg(&st, 0), Some(11));
    }

    #[test]
    fn saturating_distances_never_wrap() {
        let s = Sssp::new(0);
        let st = SsspState {
            dist: u32::MAX - 1,
            acc: UNREACHED,
        };
        assert_eq!(s.edge_msg(&st, 100), Some(u32::MAX));
    }

    #[test]
    fn relax_and_absorb() {
        let s = Sssp::new(0);
        let mut st = SsspState {
            dist: 100,
            acc: UNREACHED,
        };
        assert!(s.accumulate(&mut st, 40));
        assert!(s.accumulate(&mut st, 30));
        assert!(s.absorb(&mut st));
        assert_eq!(st.dist, 30);
    }
}
