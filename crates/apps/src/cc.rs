//! Weakly connected components: data-driven push label propagation with a
//! min-reduction on component id, run on the symmetrized graph (so weak
//! connectivity is computed for directed inputs, as in Galois/D-IrGL).

use dirgl_core::{InitCtx, Style, VertexProgram};
use dirgl_graph::csr::VertexId;

/// Per-proxy cc state.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CcState {
    /// Current component label (min global id seen).
    pub comp: u32,
    /// Min accumulator.
    pub acc: u32,
}

/// Weakly connected components.
#[derive(Clone, Copy, Debug, Default)]
pub struct Cc;

impl VertexProgram for Cc {
    type State = CcState;
    type Wire = u32;

    fn name(&self) -> &'static str {
        "cc"
    }

    fn permutation_safe(&self) -> bool {
        // Exact, order-independent integer reduction: a permuted
        // kernel layout produces bit-identical values.
        true
    }

    fn style(&self) -> Style {
        Style::PushDataDriven
    }

    fn needs_symmetric(&self) -> bool {
        true
    }

    fn init_state(&self, gv: VertexId, _ctx: &InitCtx<'_>) -> CcState {
        CcState {
            comp: gv,
            acc: u32::MAX,
        }
    }

    fn initially_active(&self, _gv: VertexId, _ctx: &InitCtx<'_>) -> bool {
        true
    }

    fn edge_msg(&self, state: &CcState, _weight: u32) -> Option<u32> {
        Some(state.comp)
    }

    fn accumulate(&self, state: &mut CcState, msg: u32) -> bool {
        if msg < state.acc && msg < state.comp {
            state.acc = msg;
            true
        } else {
            false
        }
    }

    fn absorb(&self, state: &mut CcState) -> bool {
        if state.acc < state.comp {
            state.comp = state.acc;
            true
        } else {
            false
        }
    }

    fn take_delta(&self, state: &mut CcState) -> u32 {
        let d = state.acc.min(state.comp);
        state.acc = u32::MAX;
        d
    }

    fn canonical(&self, state: &CcState) -> u32 {
        state.comp
    }

    fn set_canonical(&self, state: &mut CcState, v: u32) -> bool {
        if v < state.comp {
            state.comp = v;
            true
        } else {
            false
        }
    }

    fn output(&self, state: &CcState) -> f64 {
        state.comp as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_start_at_own_id_and_all_active() {
        let degs = vec![1; 3];
        let c = InitCtx::new(3, &degs);
        let cc = Cc;
        assert!(cc.needs_symmetric());
        assert_eq!(cc.init_state(2, &c).comp, 2);
        assert!(cc.initially_active(0, &c));
    }

    #[test]
    fn propagates_minimum() {
        let cc = Cc;
        let mut s = CcState {
            comp: 9,
            acc: u32::MAX,
        };
        assert!(cc.accumulate(&mut s, 4));
        assert!(cc.absorb(&mut s));
        assert_eq!(s.comp, 4);
        assert!(!cc.set_canonical(&mut s, 6)); // worse label rejected
        assert!(cc.set_canonical(&mut s, 1));
        assert_eq!(s.comp, 1);
    }
}
