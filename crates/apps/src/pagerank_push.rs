//! Push-style residual pagerank — the data-driven formulation
//! Gluon-Async uses for asynchronous execution (an extension beyond the
//! paper's pull implementation; the `abl_pr_push_pull` benchmark compares
//! the two, complementing the §V-B2 discussion).
//!
//! Mass moves in *generations*. A master that absorbs new mass folds it
//! into its rank and into the pending generation `gen`; every proxy of the
//! vertex that holds out-edges pushes `gen × α / outdeg` along each of its
//! local out-edges exactly once (the generation is broadcast to mirrors
//! and consumed by `begin_push`). Work per round follows the *active*
//! vertices' out-degrees, so the huge max in-degrees that break TWC under
//! the pull formulation are irrelevant here.

use dirgl_core::{InitCtx, Style, VertexProgram};
use dirgl_graph::csr::VertexId;

/// Per-proxy state for push pagerank.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PrPushState {
    /// Accumulated rank (meaningful on masters).
    pub rank: f32,
    /// Residual generation not yet pushed by this proxy.
    pub gen: f32,
    /// Portion of the generation not yet broadcast to mirrors
    /// (asynchronous engines ship and reset this ledger).
    pub unsent: f32,
    /// Per-out-edge share of the generation being pushed this round.
    pub share: f32,
    /// Incoming mass accumulated since the last absorb.
    pub acc: f32,
    /// `α / outdeg` (0 for sinks), precomputed from the global out-degree.
    pub kappa: f32,
}

/// Push-style residual pagerank.
#[derive(Clone, Copy, Debug)]
pub struct PageRankPush {
    /// Damping factor.
    pub alpha: f32,
    /// Residual threshold: generations at or below it stay parked.
    pub tolerance: f32,
}

impl Default for PageRankPush {
    fn default() -> Self {
        PageRankPush {
            alpha: 0.85,
            tolerance: 1e-4,
        }
    }
}

impl PageRankPush {
    /// Standard configuration (α = 0.85, tolerance 1e-4).
    pub fn new() -> PageRankPush {
        Self::default()
    }
}

impl VertexProgram for PageRankPush {
    type State = PrPushState;
    type Wire = f32;

    fn name(&self) -> &'static str {
        "pagerank-push"
    }

    fn style(&self) -> Style {
        Style::PushDataDriven
    }

    fn init_state(&self, gv: VertexId, ctx: &InitCtx<'_>) -> PrPushState {
        let d = ctx.out_degrees[gv as usize];
        PrPushState {
            rank: 0.0,
            // Every proxy starts with the initial generation pre-seeded,
            // so nothing needs broadcasting (unsent = 0).
            gen: 1.0 - self.alpha,
            unsent: 0.0,
            share: 0.0,
            acc: 0.0,
            kappa: if d == 0 { 0.0 } else { self.alpha / d as f32 },
        }
    }

    fn initially_active(&self, _gv: VertexId, _ctx: &InitCtx<'_>) -> bool {
        // The initial (1-α) generation is already folded into every
        // proxy's `gen`; the initial rank application happens on first
        // absorb/push. Seed rank here instead: every vertex starts active
        // and pushes its initial generation.
        true
    }

    fn begin_push(&self, state: &mut PrPushState) -> bool {
        if state.gen > self.tolerance {
            state.share = state.gen * state.kappa;
            state.gen = 0.0;
            true
        } else {
            state.share = 0.0;
            false
        }
    }

    fn edge_msg(&self, state: &PrPushState, _weight: u32) -> Option<f32> {
        (state.share != 0.0).then_some(state.share)
    }

    fn accumulate(&self, state: &mut PrPushState, msg: f32) -> bool {
        if msg != 0.0 {
            state.acc += msg;
            true
        } else {
            false
        }
    }

    fn absorb(&self, state: &mut PrPushState) -> bool {
        if state.acc != 0.0 {
            // New mass counts into rank exactly once (here, on the
            // master) and joins the pending generation for propagation.
            state.rank += state.acc;
            state.gen += state.acc;
            state.unsent += state.acc;
            state.acc = 0.0;
            state.gen > self.tolerance
        } else {
            false
        }
    }

    fn take_delta(&self, state: &mut PrPushState) -> f32 {
        let d = state.acc;
        state.acc = 0.0;
        d
    }

    fn canonical(&self, state: &PrPushState) -> f32 {
        state.gen
    }

    fn set_canonical(&self, state: &mut PrPushState, v: f32) -> bool {
        // Bulk-synchronous: rounds are aligned, the broadcast generation
        // replaces the mirror's view.
        if state.gen != v {
            state.gen = v;
            true
        } else {
            false
        }
    }

    fn canonical_async(&self, state: &PrPushState) -> f32 {
        // Only the not-yet-broadcast mass ships asynchronously; the
        // engine resets the ledger via `after_broadcast` once every
        // mirror holder has been served.
        state.unsent
    }

    fn after_broadcast(&self, state: &mut PrPushState) {
        state.unsent = 0.0;
    }

    fn merge_canonical_async(&self, state: &mut PrPushState, v: f32) -> bool {
        // Asynchronous: each broadcast carries one generation, delivered
        // additively and consumed by the mirror's next push.
        if v != 0.0 {
            state.gen += v;
            true
        } else {
            false
        }
    }

    fn output(&self, state: &PrPushState) -> f64 {
        // The initial (1-α) generation is applied to rank lazily; account
        // for it here so outputs match the pull formulation.
        state.rank as f64 + (1.0 - self.alpha) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_lifecycle() {
        let pr = PageRankPush::new();
        let degs = vec![4u32];
        let ctx = InitCtx::new(1, &degs);
        let mut s = pr.init_state(0, &ctx);
        assert!((s.gen - 0.15).abs() < 1e-7);
        // Push splits the generation by out-degree and consumes it.
        assert!(pr.begin_push(&mut s));
        assert!((s.share - 0.15 * 0.85 / 4.0).abs() < 1e-8);
        assert_eq!(s.gen, 0.0);
        assert!(!pr.begin_push(&mut s));
        // Incoming mass raises rank and the next generation exactly once.
        assert!(pr.accumulate(&mut s, 0.1));
        assert!(pr.absorb(&mut s));
        assert!((s.rank - 0.1).abs() < 1e-7);
        assert!((s.gen - 0.1).abs() < 1e-7);
    }

    #[test]
    fn sinks_swallow_mass() {
        let pr = PageRankPush::new();
        let degs = vec![0u32];
        let ctx = InitCtx::new(1, &degs);
        let mut s = pr.init_state(0, &ctx);
        assert!(pr.begin_push(&mut s));
        assert_eq!(pr.edge_msg(&s, 0), None); // kappa = 0 -> no share
    }

    #[test]
    fn async_merge_is_additive() {
        let pr = PageRankPush::new();
        let degs = vec![2u32];
        let ctx = InitCtx::new(1, &degs);
        let mut s = pr.init_state(0, &ctx);
        s.gen = 0.0;
        assert!(pr.merge_canonical_async(&mut s, 0.05));
        assert!(pr.merge_canonical_async(&mut s, 0.05));
        assert!((s.gen - 0.1).abs() < 1e-7);
    }
}
