//! Determinism contracts of the kernel-layout layer (`dirgl_core::layout`),
//! pinned by proptest across policies, engines and device counts:
//!
//! 1. **Integer apps are layout-invariant** — bfs, cc and sssp fold with
//!    exact order-independent accumulators (`min`), so a degree-sorted or
//!    segmented permutation (forced or Auto-selected) must produce
//!    *bit-identical* vertex values to the insertion-order run.
//! 2. **Float apps under `Auto` never permute** — pagerank's f32 residual
//!    sums reassociate under a permutation, so `Auto` leaves it on
//!    insertion order: bit-identical values to the layout-free run.
//! 3. **Forced float runs are tolerant but deterministic** — forcing a
//!    layout on pagerank moves values only within float-reassociation
//!    tolerance of the insertion baseline, and running the same forced
//!    configuration twice is bit-identical (the permutation is a pure
//!    function of the partition).

use proptest::prelude::*;

use dirgl::prelude::*;
use dirgl_core::VertexProgram;

const POLICIES: [Policy; 4] = [Policy::Oec, Policy::Iec, Policy::Hvc, Policy::Cvc];

/// Max relative error allowed between a forced-layout pagerank run and
/// the insertion baseline (f32 reassociation drift only).
const FLOAT_TOL: f64 = 1e-3;

/// Runs `app` on `g` under `choice` via a prepared partition (the layout
/// layer lives on [`PreparedPartition`]) and returns the value bits.
fn run_with_layout<P: VertexProgram>(
    g: &Csr,
    app: &P,
    policy: Policy,
    sync: bool,
    devices: u32,
    choice: LayoutChoice,
) -> Vec<u64> {
    let variant = if sync {
        Variant::var3()
    } else {
        Variant::var4()
    };
    let cfg = RunConfig::new(policy, variant)
        .scale(1024)
        .with_layout(choice);
    let rt = Runtime::new(Platform::bridges(devices), cfg);
    let prep = rt.prepare(g, app.needs_symmetric()).unwrap();
    let out = rt
        .runner(prep.graph(), app)
        .partition(&prep)
        .execute()
        .unwrap();
    out.values.iter().map(|v| v.to_bits()).collect()
}

/// The non-baseline choices every integer app must be invariant under.
const PERMUTING: [LayoutChoice; 3] = [
    LayoutChoice::Force(LayoutKind::DegreeSorted),
    LayoutChoice::Force(LayoutKind::Segmented),
    LayoutChoice::Auto,
];

fn assert_integer_invariant<P: VertexProgram>(
    g: &Csr,
    app: &P,
    policy: Policy,
    sync: bool,
    devices: u32,
) -> Result<(), TestCaseError> {
    let base = run_with_layout(g, app, policy, sync, devices, LayoutChoice::Insertion);
    for choice in PERMUTING {
        let got = run_with_layout(g, app, policy, sync, devices, choice);
        prop_assert_eq!(
            &base,
            &got,
            "values diverged under {:?} ({policy}, sync={sync}, devices={devices})",
            choice
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Contract 1, bfs: layouts never move integer distances.
    #[test]
    fn bfs_values_are_layout_invariant(
        gseed in 0u64..1_000,
        policy in prop::sample::select(POLICIES.to_vec()),
        sync in any::<bool>(),
        devices in 2u32..6,
    ) {
        let g = RmatConfig::new(8, 8).seed(gseed).generate();
        assert_integer_invariant(&g, &Bfs::from_max_out_degree(&g), policy, sync, devices)?;
    }

    /// Contract 1, sssp: weighted pull/push folds are still exact mins.
    #[test]
    fn sssp_values_are_layout_invariant(
        gseed in 0u64..1_000,
        policy in prop::sample::select(POLICIES.to_vec()),
        sync in any::<bool>(),
        devices in 2u32..6,
    ) {
        let g = RmatConfig::new(8, 8).seed(gseed).generate();
        assert_integer_invariant(&g, &Sssp::from_max_out_degree(&g), policy, sync, devices)?;
    }

    /// Contract 1, cc: the symmetrized view permutes per device too.
    #[test]
    fn cc_values_are_layout_invariant(
        gseed in 0u64..1_000,
        policy in prop::sample::select(POLICIES.to_vec()),
        sync in any::<bool>(),
        devices in 2u32..6,
    ) {
        let g = RmatConfig::new(8, 8).seed(gseed).generate();
        assert_integer_invariant(&g, &Cc, policy, sync, devices)?;
    }

    /// Contracts 2 and 3, pagerank: Auto stays on insertion order
    /// (bit-identical); forced layouts stay within reassociation
    /// tolerance and are bit-identical run-to-run.
    #[test]
    fn pagerank_layout_contracts(
        gseed in 0u64..1_000,
        policy in prop::sample::select(POLICIES.to_vec()),
        sync in any::<bool>(),
        devices in 2u32..6,
    ) {
        let g = RmatConfig::new(8, 8).seed(gseed).generate();
        let app = PageRank::new();
        let base = run_with_layout(&g, &app, policy, sync, devices, LayoutChoice::Insertion);

        let auto = run_with_layout(&g, &app, policy, sync, devices, LayoutChoice::Auto);
        prop_assert_eq!(&base, &auto, "Auto permuted a float program ({policy}, sync={sync})");

        for kind in [LayoutKind::DegreeSorted, LayoutKind::Segmented] {
            let choice = LayoutChoice::Force(kind);
            let a = run_with_layout(&g, &app, policy, sync, devices, choice);
            let b = run_with_layout(&g, &app, policy, sync, devices, choice);
            prop_assert_eq!(
                &a, &b,
                "forced {:?} run is not deterministic ({policy}, sync={sync})", kind
            );
            for (x, y) in base.iter().zip(&a) {
                let (x, y) = (f64::from_bits(*x), f64::from_bits(*y));
                let rel = (x - y).abs() / x.abs().max(1e-12);
                prop_assert!(
                    rel <= FLOAT_TOL,
                    "forced {:?} drifted {rel:.3e} ({policy}, sync={sync})", kind
                );
            }
        }
    }
}
