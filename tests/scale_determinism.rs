//! Out-of-core scale determinism: the compressed/streamed ingestion path
//! and the spill execution mode must be invisible in every observable
//! output.
//!
//! Three contracts, workspace-wide:
//!
//! 1. A partition built by the chunked streaming builder from a
//!    *compressed* graph, prepared and executed, produces byte-identical
//!    `ExecutionReport`s, vertex values, and traces to the in-memory
//!    builder on the plain CSR — across four policies and both engines.
//! 2. A spilled run (compressed adjacency decoded per round) produces
//!    bit-identical vertex values and identical round/communication
//!    structure under BSP; only the simulated times and the memory charge
//!    may differ, exactly as the model intends.
//! 3. Spill widens the feasible region: a capacity that OOMs raw is
//!    admitted with `with_spill(true)`, and the recorded memory equals
//!    the spilled footprint oracle.

use dirgl::core::PreparedPartition;
use dirgl::graph::weights::{randomize_weights, DEFAULT_MAX_WEIGHT};
use dirgl::graph::CompressedCsr;
use dirgl::prelude::*;

fn weighted_graph() -> Csr {
    let g = RmatConfig::new(10, 8).seed(0xA11CE).generate();
    randomize_weights(&g, DEFAULT_MAX_WEIGHT, 0x5EED)
}

/// Runs `bench` on a prepared partition; returns every observable byte:
/// the debug-formatted report, the raw value bits, the trace bytes.
fn run_prepared(
    rt: &Runtime,
    prep: &PreparedPartition,
    bench: &'static str,
) -> (String, Vec<u64>, Vec<u8>) {
    let g = prep.graph();
    let mut buf: Vec<u8> = Vec::new();
    let mut sink = JsonLinesSink::new(&mut buf);
    let out = match bench {
        "bfs" => rt
            .job(prep, &Bfs::from_max_out_degree(g))
            .trace(&mut sink)
            .execute()
            .unwrap(),
        "sssp" => rt
            .job(prep, &Sssp::new(Runtime::max_out_degree_source(g).unwrap()))
            .trace(&mut sink)
            .execute()
            .unwrap(),
        other => panic!("unknown bench {other}"),
    };
    drop(sink);
    let bits = out.values.iter().map(|v| v.to_bits()).collect();
    (format!("{:?}", out.report), bits, buf)
}

/// Contract 1: compressed-streamed partition build ≡ in-memory build, end
/// to end, across 4 policies × both engines.
#[test]
fn compressed_prepared_partitions_agree_end_to_end() {
    let g = weighted_graph();
    let comp = CompressedCsr::from_csr(&g);
    for policy in [Policy::Oec, Policy::Iec, Policy::Hvc, Policy::Cvc] {
        let plain = Partition::build(&g, policy, 4, 0);
        let streamed = Partition::build_streamed(&comp, policy, 4, 0);
        let prep_plain = PreparedPartition::from_partition(g.clone(), plain);
        let prep_streamed = PreparedPartition::from_partition(g.clone(), streamed);
        for variant in [Variant::var1(), Variant::var4()] {
            let rt = Runtime::new(Platform::bridges(4), RunConfig::new(policy, variant));
            for bench in ["bfs", "sssp"] {
                let a = run_prepared(&rt, &prep_plain, bench);
                let b = run_prepared(&rt, &prep_streamed, bench);
                assert_eq!(
                    a,
                    b,
                    "{policy:?}/{}/{bench}: compressed-streamed build diverged",
                    variant.label()
                );
            }
        }
    }
}

/// A platform whose devices all have `bytes` of memory.
fn capped(devices: u32, bytes: u64) -> Platform {
    let mut p = Platform::bridges(devices);
    for gpu in &mut p.gpus {
        gpu.memory_bytes = bytes;
    }
    p
}

/// Contracts 2 + 3 under BSP: raw OOMs at the chosen capacity, spill is
/// admitted, values and round structure are bit-identical to the
/// uncapped raw run, memory equals the spilled oracle, and the decode
/// charge makes compute time strictly larger.
#[test]
fn spill_admits_deeper_and_is_value_identical_bsp() {
    let g = weighted_graph();
    let config = RunConfig::new(Policy::Cvc, Variant::var1());
    let rt = Runtime::new(Platform::bridges(4), config.clone());
    let prep = rt.prepare(&g, false).unwrap();
    let prog = Sssp::new(Runtime::max_out_degree_source(prep.graph()).unwrap());

    let raw_max = *rt.footprint(&prep, &prog).iter().max().unwrap();
    let spilled = rt.footprint_spilled(&prep, &prog);
    let spilled_max = *spilled.iter().max().unwrap();
    assert!(
        spilled_max < raw_max,
        "compressed footprint must be smaller ({spilled_max} !< {raw_max})"
    );
    let cap = spilled_max + (raw_max - spilled_max) / 2;

    let baseline = rt.job(&prep, &prog).execute().unwrap();

    // Raw admission refuses this capacity...
    let rt_capped = Runtime::new(capped(4, cap), config.clone());
    match rt_capped.job(&prep, &prog).execute() {
        Err(RunError::Oom { .. }) => {}
        Err(other) => panic!("expected OOM, got {other:?}"),
        Ok(_) => panic!("expected OOM, but the raw run was admitted"),
    }

    // ...spill admits it, with identical values and round structure.
    let rt_spill = Runtime::new(capped(4, cap), config.clone().with_spill(true));
    let out = rt_spill.job(&prep, &prog).execute().unwrap();
    let bits =
        |o: &dirgl::core::RunOutput| -> Vec<u64> { o.values.iter().map(|v| v.to_bits()).collect() };
    assert_eq!(bits(&out), bits(&baseline), "spilled values diverged");
    assert_eq!(out.report.rounds, baseline.report.rounds);
    assert_eq!(out.report.comm_bytes, baseline.report.comm_bytes);
    assert_eq!(out.report.messages, baseline.report.messages);
    assert_eq!(out.report.work_items, baseline.report.work_items);
    // Over-capacity devices are charged the compressed footprint.
    for (d, &mem) in out.report.memory_per_device.iter().enumerate() {
        assert!(mem <= cap, "device {d} over budget: {mem} > {cap}");
        let raw_d = rt.footprint(&prep, &prog)[d];
        let want = if raw_d > cap { spilled[d] } else { raw_d };
        assert_eq!(mem, want, "device {d} memory charge");
    }
    // At least one device actually spilled, and decoding is not free.
    assert!(
        rt.footprint(&prep, &prog).iter().any(|&b| b > cap),
        "premise broken: nothing needed to spill"
    );
    let t_spill: f64 = out
        .report
        .compute_per_device
        .iter()
        .map(|t| t.as_secs_f64())
        .sum();
    let t_raw: f64 = baseline
        .report
        .compute_per_device
        .iter()
        .map(|t| t.as_secs_f64())
        .sum();
    assert!(
        t_spill > t_raw,
        "decode charge missing: {t_spill} !> {t_raw}"
    );

    // With ample capacity the spill flag is inert: raw is preferred and
    // the whole report is byte-identical to the baseline.
    let rt_ample = Runtime::new(Platform::bridges(4), config.with_spill(true));
    let ample = rt_ample.job(&prep, &prog).execute().unwrap();
    assert_eq!(
        format!("{:?}", ample.report),
        format!("{:?}", baseline.report)
    );
    assert_eq!(bits(&ample), bits(&baseline));
}

/// Spilled BASP: the asynchronous engine reaches the same fixed point for
/// monotone programs — bfs values are bit-identical raw vs spilled even
/// though local round pacing may shift under the decode charge.
#[test]
fn spill_reaches_the_same_fixed_point_basp() {
    let g = weighted_graph();
    let config = RunConfig::new(Policy::Oec, Variant::var4());
    let rt = Runtime::new(Platform::bridges(4), config.clone());
    let prep = rt.prepare(&g, false).unwrap();
    let prog = Bfs::from_max_out_degree(prep.graph());

    let raw_max = *rt.footprint(&prep, &prog).iter().max().unwrap();
    let spilled_max = *rt.footprint_spilled(&prep, &prog).iter().max().unwrap();
    let cap = spilled_max + (raw_max - spilled_max) / 2;

    let baseline = rt.job(&prep, &prog).execute().unwrap();
    let rt_spill = Runtime::new(capped(4, cap), config.with_spill(true));
    let out = rt_spill.job(&prep, &prog).execute().unwrap();
    let bits =
        |o: &dirgl::core::RunOutput| -> Vec<u64> { o.values.iter().map(|v| v.to_bits()).collect() };
    assert_eq!(bits(&out), bits(&baseline), "BASP spilled bfs diverged");
}
