//! Host-parallelism determinism: the worker pool must never change results.
//!
//! Both engines are virtual-time simulations — host threads only split
//! per-device work whose merge order is fixed by device id, so every
//! observable output (the `ExecutionReport`, the gathered vertex values,
//! the JSONL trace bytes) must be byte-identical regardless of how many
//! pool threads execute it. These tests pin that contract for bfs and
//! pagerank on an R-MAT graph across all four partitioning policies,
//! under both the BSP (Var1) and BASP (Var4) drivers.

use dirgl::prelude::*;
use rayon::ThreadPoolBuilder;

/// One full run (partition build + engine + master gather + trace) under a
/// pool of `threads` workers. Returns everything an external observer can
/// see: the debug-formatted report, the raw value bits, the trace bytes.
fn run_case(
    threads: usize,
    policy: Policy,
    variant: Variant,
    bench: &'static str,
) -> (String, Vec<u64>, Vec<u8>) {
    run_case_cfg(threads, policy, variant, bench, false)
}

/// [`run_case`] with control over the hot-path toggle
/// ([`RunConfig::legacy_hotpath`]).
fn run_case_cfg(
    threads: usize,
    policy: Policy,
    variant: Variant,
    bench: &'static str,
    legacy: bool,
) -> (String, Vec<u64>, Vec<u8>) {
    let pool = ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .unwrap();
    pool.install(|| {
        let graph = RmatConfig::new(10, 8).seed(0xD5).generate();
        let rt = Runtime::new(
            Platform::bridges(8),
            RunConfig::new(policy, variant).with_legacy_hotpath(legacy),
        );
        let mut buf: Vec<u8> = Vec::new();
        let mut sink = JsonLinesSink::new(&mut buf);
        let out = match bench {
            "bfs" => rt
                .runner(&graph, &Bfs::from_max_out_degree(&graph))
                .trace(&mut sink)
                .execute()
                .unwrap(),
            "pagerank" => rt
                .runner(&graph, &PageRank::new())
                .trace(&mut sink)
                .execute()
                .unwrap(),
            other => panic!("unknown bench {other}"),
        };
        drop(sink);
        let bits = out.values.iter().map(|v| v.to_bits()).collect();
        (format!("{:?}", out.report), bits, buf)
    })
}

fn assert_thread_count_invariant(bench: &'static str) {
    for policy in [Policy::Oec, Policy::Iec, Policy::Hvc, Policy::Cvc] {
        for variant in [Variant::var1(), Variant::var4()] {
            let seq = run_case(1, policy, variant, bench);
            let par = run_case(2, policy, variant, bench);
            assert_eq!(
                seq.0,
                par.0,
                "{bench}/{}/{}: report differs between 1 and 2 threads",
                policy.name(),
                variant.label(),
            );
            assert_eq!(
                seq.1,
                par.1,
                "{bench}/{}/{}: vertex values differ between 1 and 2 threads",
                policy.name(),
                variant.label(),
            );
            assert_eq!(
                seq.2,
                par.2,
                "{bench}/{}/{}: trace JSONL differs between 1 and 2 threads",
                policy.name(),
                variant.label(),
            );
            assert!(
                !seq.2.is_empty(),
                "{bench}: trace should not be empty (vacuous comparison)"
            );
        }
    }
}

#[test]
fn bfs_identical_across_thread_counts() {
    assert_thread_count_invariant("bfs");
}

#[test]
fn pagerank_identical_across_thread_counts() {
    assert_thread_count_invariant("pagerank");
}

/// Spot check a wider pool: more workers than devices-per-chunk still
/// reproduces the single-thread bytes exactly.
#[test]
fn four_threads_match_one() {
    let seq = run_case(1, Policy::Cvc, Variant::var4(), "bfs");
    let par = run_case(4, Policy::Cvc, Variant::var4(), "bfs");
    assert_eq!(seq, par);
}

/// The optimized hot path (sparsity-proportional UO extraction via the
/// sync plan's inverse indexes, plus scratch-buffer reuse) and the legacy
/// path (dense per-entry walk, fresh allocations) must be byte-identical
/// in every observable: report Debug text, vertex value bits, trace JSONL.
#[test]
fn legacy_hotpath_matches_optimized() {
    for bench in ["bfs", "pagerank"] {
        for policy in [Policy::Oec, Policy::Iec, Policy::Hvc, Policy::Cvc] {
            for variant in [Variant::var1(), Variant::var4()] {
                let opt = run_case_cfg(2, policy, variant, bench, false);
                let legacy = run_case_cfg(2, policy, variant, bench, true);
                assert_eq!(
                    opt.0,
                    legacy.0,
                    "{bench}/{}/{}: report differs between hot paths",
                    policy.name(),
                    variant.label(),
                );
                assert_eq!(
                    opt.1,
                    legacy.1,
                    "{bench}/{}/{}: vertex values differ between hot paths",
                    policy.name(),
                    variant.label(),
                );
                assert_eq!(
                    opt.2,
                    legacy.2,
                    "{bench}/{}/{}: trace JSONL differs between hot paths",
                    policy.name(),
                    variant.label(),
                );
            }
        }
    }
}
