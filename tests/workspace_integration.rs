//! Cross-crate integration tests exercising the facade the way a
//! downstream user would.

use dirgl::comm::SyncPlan;
use dirgl::prelude::*;

fn graph() -> Csr {
    let g = WebCrawlConfig::new(6_000, 120_000, 400, 300, 30)
        .seed(17)
        .generate();
    dirgl::graph::weights::randomize_weights(&g, 100, 17)
}

#[test]
fn facade_quickstart_flow() {
    let g = RmatConfig::new(10, 8).seed(42).generate();
    let platform = Platform::homogeneous(4, GpuSpec::p100(), ClusterSpec::bridges());
    let runtime = Runtime::new(platform, RunConfig::var4(Policy::Cvc));
    let out = runtime
        .runner(&g, &Bfs::from_max_out_degree(&g))
        .execute()
        .unwrap();
    assert!(out.report.total_time.as_secs_f64() > 0.0);
    assert_eq!(out.values.len(), g.num_vertices() as usize);
}

#[test]
fn oom_surfaces_as_missing_point() {
    let g = graph();
    // An absurd divisor makes the paper-equivalent working set enormous.
    let rt = Runtime::new(
        Platform::bridges(2),
        RunConfig::var4(Policy::Iec).scale(1 << 30),
    );
    match rt.runner(&g, &Cc).execute() {
        Err(RunError::Oom { device, err }) => {
            assert!(device < 2);
            assert!(err.requested > err.capacity);
        }
        other => panic!("expected OOM, got {:?}", other.map(|o| o.report.total_time)),
    }
}

#[test]
fn gpudirect_never_slower() {
    // Synchronous variant: the message multiset is then identical with and
    // without GPUDirect, so the comparison is pure transport (under BASP
    // the changed timing alters staleness and therefore the work itself).
    let g = graph();
    for policy in [Policy::Iec, Policy::Cvc] {
        let mut cfg = RunConfig::new(policy, Variant::var3()).scale(1024);
        let staged = Runtime::new(Platform::bridges(8), cfg.clone())
            .runner(&g, &Sssp::from_max_out_degree(&g))
            .execute()
            .unwrap();
        cfg.gpudirect = true;
        let direct = Runtime::new(Platform::bridges(8), cfg)
            .runner(&g, &Sssp::from_max_out_degree(&g))
            .execute()
            .unwrap();
        assert!(
            direct.report.total_time <= staged.report.total_time,
            "{policy}: direct {} vs staged {}",
            direct.report.total_time,
            staged.report.total_time
        );
        // Same answers either way.
        assert_eq!(direct.values, staged.values);
    }
}

#[test]
fn heterogeneous_tuxedo_platform_runs() {
    let g = graph();
    // 4x K80 + 2x GTX 1080: slower devices straggle, results unchanged.
    let out = Runtime::new(Platform::tuxedo(), RunConfig::var4(Policy::Oec))
        .runner(&g, &Bfs::from_max_out_degree(&g))
        .execute()
        .unwrap();
    let want = reference::bfs(&g, g.max_out_degree_vertex());
    for (got, want) in out.values.iter().zip(&want) {
        assert_eq!(*got, *want as f64);
    }
    // Compute is imbalanced across device types.
    assert!(out.report.dynamic_balance() > 1.05);
}

#[test]
fn sync_plan_reflects_policy_structure_through_facade() {
    let g = graph();
    let cvc = Partition::build(&g, Policy::Cvc, 16, 0);
    let plan = SyncPlan::build(&cvc, true, true);
    for d in 0..16 {
        assert!(plan.partner_count(d) <= 6, "CVC partners exceed row+col");
    }
    let oec = Partition::build(&g, Policy::Oec, 16, 0);
    let plan = SyncPlan::build(&oec, true, true);
    assert!(plan.bcast_is_elided());
}

#[test]
fn dataset_catalog_runs_end_to_end() {
    // Smallest catalog entry at an extra divisor, through the full
    // pipeline: catalog -> partition -> engine -> verify.
    let ds = DatasetId::Rmat23.load_scaled(16);
    let rt = Runtime::new(
        Platform::bridges(4),
        RunConfig::var4(Policy::Cvc).scale(ds.divisor),
    );
    let app = Sssp::from_max_out_degree(&ds.graph);
    let out = rt.runner(&ds.graph, &app).execute().unwrap();
    let want = reference::sssp(&ds.graph, app.source);
    for (got, want) in out.values.iter().zip(&want) {
        assert_eq!(*got, *want as f64);
    }
    // Memory is reported in paper-equivalent units.
    assert!(out.report.max_memory() > ds.graph.bytes());
}

#[test]
fn all_frameworks_agree_on_components() {
    let g = graph();
    let want: Vec<f64> = reference::cc(&g.symmetrize())
        .iter()
        .map(|&c| c as f64)
        .collect();
    let dirgl = Runtime::new(Platform::tuxedo(), RunConfig::var4(Policy::Hvc))
        .runner(&g, &Cc)
        .execute()
        .unwrap();
    let lux = LuxRuntime::new(Platform::tuxedo(), 1).run_cc(&g).unwrap();
    let gunrock = GunrockSim::new(Platform::tuxedo(), 1).run_cc(&g).unwrap();
    let groute = GrouteSim::new(Platform::tuxedo(), 1).run_cc(&g).unwrap();
    for (name, vals) in [
        ("dirgl", &dirgl.values),
        ("lux", &lux.values),
        ("gunrock", &gunrock.values),
        ("groute", &groute.values),
    ] {
        assert_eq!(vals[..], want[..], "{name} components differ");
    }
}

#[test]
fn graph_io_roundtrip_through_facade() {
    let g = graph();
    let mut buf = Vec::new();
    dirgl::graph::io::write_binary(&g, &mut buf).unwrap();
    let g2 = dirgl::graph::io::read_binary(&buf[..]).unwrap();
    assert_eq!(g, g2);
}
