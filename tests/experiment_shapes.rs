//! Shape checks: the paper's headline findings must hold on scaled-down
//! runs. These are the claims `EXPERIMENTS.md` tracks, asserted at a scale
//! small enough for CI.

use dirgl::prelude::*;
use dirgl_bench::{run_dirgl, BenchId, LoadedDataset, PartitionCache};

fn total(r: &Result<dirgl::core::RunOutput, RunError>) -> f64 {
    r.as_ref().unwrap().report.total_time.as_secs_f64()
}

/// Lesson 1 (§V-C / Fig. 7): CVC is critical to scale out — it beats the
/// edge-cuts at 16+ GPUs. Checked on the social-network medium input
/// (twitter50): no id locality for contiguous edge-cuts to exploit, the
/// regime where the partner-count argument is cleanest (on the web crawls
/// the edge-cuts ride crawl locality to within a few percent of CVC, in
/// this reproduction more so than in the paper — see EXPERIMENTS.md).
#[test]
fn cvc_wins_at_scale() {
    let ld = LoadedDataset::load(DatasetId::Twitter50, 4);
    let mut cache = PartitionCache::new();
    let mut cvc_wins = 0;
    let mut cells = 0;
    for bench in [BenchId::Bfs, BenchId::Cc, BenchId::Sssp] {
        let cvc = total(&run_dirgl(
            bench,
            &ld,
            &mut cache,
            &Platform::bridges(64),
            Policy::Cvc,
            Variant::var4(),
        ));
        for policy in [Policy::Oec, Policy::Iec, Policy::Hvc] {
            let other = total(&run_dirgl(
                bench,
                &ld,
                &mut cache,
                &Platform::bridges(64),
                policy,
                Variant::var4(),
            ));
            cells += 1;
            if cvc <= other * 1.05 {
                cvc_wins += 1;
            }
        }
    }
    assert!(
        cvc_wins * 3 >= cells * 2,
        "CVC won only {cvc_wins}/{cells} comparisons at 64 GPUs"
    );
}

/// §V-B3 (Fig. 4): UO (Var3) cuts communication volume sharply vs AS
/// (Var2) and does not lose time overall on the medium inputs.
#[test]
fn updated_only_cuts_volume() {
    let ld = LoadedDataset::load(DatasetId::Twitter50, 4);
    let mut cache = PartitionCache::new();
    for bench in [BenchId::Bfs, BenchId::Sssp] {
        let var2 = run_dirgl(
            bench,
            &ld,
            &mut cache,
            &Platform::bridges(32),
            Policy::Iec,
            Variant::var2(),
        )
        .unwrap();
        let var3 = run_dirgl(
            bench,
            &ld,
            &mut cache,
            &Platform::bridges(32),
            Policy::Iec,
            Variant::var3(),
        )
        .unwrap();
        assert!(
            (var3.report.comm_bytes as f64) < 0.5 * var2.report.comm_bytes as f64,
            "{bench}: UO volume {} vs AS {}",
            var3.report.comm_bytes,
            var2.report.comm_bytes
        );
        assert!(var3.report.total_time <= var2.report.total_time);
    }
}

/// §V-B2 (Fig. 6): ALB only matters where the max in-degree is huge —
/// pagerank (pull) on a web crawl — and TWC/ALB tie on push benchmarks.
#[test]
fn alb_helps_exactly_where_the_paper_says() {
    // Full catalog scale: extra shrinking would inflate the clamped
    // max-degree floor relative to per-block work and manufacture TWC
    // imbalance the real input does not have.
    let ld = LoadedDataset::load(DatasetId::Uk07, 1);
    let mut cache = PartitionCache::new();
    let platform = Platform::bridges(32);
    // pagerank: Var1 (TWC) has far higher compute than Var2 (ALB).
    let v1 = run_dirgl(
        BenchId::Pagerank,
        &ld,
        &mut cache,
        &platform,
        Policy::Iec,
        Variant::var1(),
    )
    .unwrap();
    let v2 = run_dirgl(
        BenchId::Pagerank,
        &ld,
        &mut cache,
        &platform,
        Policy::Iec,
        Variant::var2(),
    )
    .unwrap();
    assert!(
        v1.report.max_compute().as_secs_f64() > 1.5 * v2.report.max_compute().as_secs_f64(),
        "pagerank TWC compute {} vs ALB {}",
        v1.report.max_compute(),
        v2.report.max_compute()
    );
    // bfs (push, low max out-degree): the two are close.
    let b1 = run_dirgl(
        BenchId::Bfs,
        &ld,
        &mut cache,
        &platform,
        Policy::Iec,
        Variant::var1(),
    )
    .unwrap();
    let b2 = run_dirgl(
        BenchId::Bfs,
        &ld,
        &mut cache,
        &platform,
        Policy::Iec,
        Variant::var2(),
    )
    .unwrap();
    let ratio =
        b1.report.max_compute().as_secs_f64() / b2.report.max_compute().as_secs_f64().max(1e-12);
    assert!(
        (0.7..1.6).contains(&ratio),
        "bfs TWC/ALB compute ratio {ratio}"
    );
}

/// §V-B1 (Figs. 3/5): D-IrGL's baseline Var1 always beats Lux, and Lux's
/// scaling flattens: its 64-GPU time gains less over 16 GPUs than Var1's.
#[test]
fn lux_trails_and_flattens() {
    let ld = LoadedDataset::load(DatasetId::Twitter50, 4);
    let mut cache = PartitionCache::new();
    for gpus in [16u32, 64] {
        let var1 = run_dirgl(
            BenchId::Cc,
            &ld,
            &mut cache,
            &Platform::bridges(gpus),
            Policy::Iec,
            Variant::var1(),
        )
        .unwrap();
        let lux = LuxRuntime::new(Platform::bridges(gpus), ld.ds.divisor)
            .run_cc(ld.graph_for(BenchId::Cc))
            .unwrap();
        assert!(
            lux.report.total_time > var1.report.total_time,
            "{gpus} GPUs: Lux {} vs Var1 {}",
            lux.report.total_time,
            var1.report.total_time
        );
    }
}

/// Table III: Lux's memory is a graph-independent constant; D-IrGL's is
/// working-set sized and smaller.
#[test]
fn lux_memory_constant_dirgl_smallest() {
    let a = LoadedDataset::load(DatasetId::Rmat23, 8);
    let b = LoadedDataset::load(DatasetId::Orkut, 8);
    let lux_a = LuxRuntime::new(Platform::tuxedo(), a.ds.divisor)
        .run_cc(&a.ds.graph)
        .unwrap();
    let lux_b = LuxRuntime::new(Platform::tuxedo(), b.ds.divisor)
        .run_cc(&b.ds.graph)
        .unwrap();
    assert_eq!(lux_a.report.max_memory(), lux_b.report.max_memory());
    let mut cache = PartitionCache::new();
    let dirgl = run_dirgl(
        BenchId::Cc,
        &a,
        &mut cache,
        &Platform::tuxedo(),
        Policy::Cvc,
        Variant::var4(),
    )
    .unwrap();
    assert!(dirgl.report.max_memory() < lux_a.report.max_memory());
}

/// Table IV: static balance tracks memory balance closely (memory is
/// edge-proportional), while dynamic balance can wander much further from
/// static (active sets are unpredictable).
#[test]
fn static_tracks_memory_not_dynamic() {
    let ld = LoadedDataset::load(DatasetId::Uk07, 1);
    let mut cache = PartitionCache::new();
    let platform = Platform::bridges(32);
    let mut max_static_memory_gap: f64 = 0.0;
    let mut max_static_dynamic_gap: f64 = 0.0;
    for policy in Policy::DIRGL {
        let part = cache.get(&ld, BenchId::Bfs, policy, 32);
        let st = PartitionMetrics::compute(part).static_balance;
        let out = run_dirgl(
            BenchId::Bfs,
            &ld,
            &mut cache,
            &platform,
            policy,
            Variant::var4(),
        )
        .unwrap();
        max_static_memory_gap = max_static_memory_gap.max((st - out.report.memory_balance()).abs());
        max_static_dynamic_gap =
            max_static_dynamic_gap.max((st - out.report.dynamic_balance()).abs());
    }
    assert!(
        max_static_memory_gap < 0.12,
        "static and memory diverge by {max_static_memory_gap}"
    );
    assert!(
        max_static_dynamic_gap > max_static_memory_gap,
        "dynamic ({max_static_dynamic_gap}) should stray further than memory ({max_static_memory_gap})"
    );
}
