//! The two determinism contracts of the fault layer, pinned by proptest:
//!
//! 1. **Null-plan byte-identity** — `faults: Some(FaultPlan::none())`
//!    routes every message through the retry/ack reliable transport, yet
//!    must be *byte-identical* to `faults: None` (the raw transport):
//!    same `ExecutionReport` (compared via `Debug`), same vertex values
//!    (compared bit-for-bit), same trace JSONL stream. This is what makes
//!    the layer free until faults are actually scheduled.
//! 2. **Seeded-fault reproducibility** — a faulty run is a function of
//!    its seed: the same `FaultPlan` twice gives the same report, values
//!    and trace, byte for byte. Fault fates are keyed by message
//!    coordinates (link, sequence number, attempt), not by host-side
//!    iteration order.

use proptest::prelude::*;

use dirgl::prelude::*;

const POLICIES: [Policy; 4] = [Policy::Oec, Policy::Iec, Policy::Hvc, Policy::Cvc];

/// Runs `app` under `cfg` and returns (report Debug, value bits, trace
/// JSONL bytes).
fn run_traced<P: dirgl::core::VertexProgram>(
    g: &Csr,
    app: &P,
    cfg: RunConfig,
    devices: u32,
) -> (String, Vec<u64>, Vec<u8>) {
    let rt = Runtime::new(Platform::bridges(devices), cfg);
    let mut buf = Vec::new();
    let mut sink = JsonLinesSink::new(&mut buf);
    let out = rt.runner(g, app).trace(&mut sink).execute().unwrap();
    let report = format!("{:?}", out.report);
    let bits = out.values.iter().map(|v| v.to_bits()).collect();
    drop(sink);
    (report, bits, buf)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Contract 1, bfs: every policy, both engines.
    #[test]
    fn null_plan_is_byte_identical_bfs(
        gseed in 0u64..1_000,
        policy in prop::sample::select(POLICIES.to_vec()),
        sync in any::<bool>(),
        devices in 2u32..6,
    ) {
        let g = RmatConfig::new(8, 8).seed(gseed).generate();
        let app = Bfs::from_max_out_degree(&g);
        let variant = if sync { Variant::var3() } else { Variant::var4() };
        let raw = run_traced(&g, &app, RunConfig::new(policy, variant), devices);
        let null = run_traced(
            &g,
            &app,
            RunConfig::new(policy, variant).with_faults(FaultPlan::none()),
            devices,
        );
        prop_assert_eq!(&raw.0, &null.0, "report diverged ({policy}, sync={sync})");
        prop_assert_eq!(&raw.1, &null.1, "values diverged ({policy}, sync={sync})");
        prop_assert_eq!(&raw.2, &null.2, "trace diverged ({policy}, sync={sync})");
    }

    /// Contract 1, pagerank: the tolerance-converging workload takes the
    /// same byte-identical guarantee — no drift allowed.
    #[test]
    fn null_plan_is_byte_identical_pagerank(
        gseed in 0u64..1_000,
        policy in prop::sample::select(POLICIES.to_vec()),
        sync in any::<bool>(),
    ) {
        let g = RmatConfig::new(8, 8).seed(gseed).generate();
        let app = PageRank::new();
        let variant = if sync { Variant::var3() } else { Variant::var4() };
        let base = RunConfig::new(policy, variant).scale(1024);
        let raw = run_traced(&g, &app, base.clone(), 4);
        let null = run_traced(&g, &app, base.with_faults(FaultPlan::none()), 4);
        prop_assert_eq!(&raw.0, &null.0, "report diverged ({policy}, sync={sync})");
        prop_assert_eq!(&raw.1, &null.1, "values diverged ({policy}, sync={sync})");
        prop_assert_eq!(&raw.2, &null.2, "trace diverged ({policy}, sync={sync})");
    }

    /// Contract 2: same seed, same faults, same bytes — including runs
    /// with drops, duplicates, delays and a crash.
    #[test]
    fn seeded_fault_runs_are_reproducible(
        gseed in 0u64..1_000,
        fseed in 0u64..1_000_000,
        drop in 0.0f64..0.25,
        dup in 0.0f64..0.1,
        crash in any::<bool>(),
        rejoin in any::<bool>(),
        sync in any::<bool>(),
    ) {
        let g = RmatConfig::new(8, 8).seed(gseed).generate();
        let app = Bfs::from_max_out_degree(&g);
        let variant = if sync { Variant::var3() } else { Variant::var4() };
        let mut plan = FaultPlan::seeded(fseed)
            .with_drop(drop)
            .with_duplicate(dup)
            .with_delay(0.02, 0.002);
        if crash {
            plan = plan.with_crash(1, 2, rejoin);
        }
        let cfg = RunConfig::new(Policy::Cvc, variant)
            .with_faults(plan)
            .with_checkpoints(2);
        let a = run_traced(&g, &app, cfg.clone(), 4);
        let b = run_traced(&g, &app, cfg, 4);
        prop_assert_eq!(&a.0, &b.0, "report not reproducible");
        prop_assert_eq!(&a.1, &b.1, "values not reproducible");
        prop_assert_eq!(&a.2, &b.2, "trace not reproducible");
    }
}
