//! Property-based tests (proptest) on the core data structures and
//! invariants, with randomly generated graphs.

use proptest::prelude::*;

use dirgl::comm::{as_message_bytes, uo_message_bytes, DenseBitset, SimTime, VAL_BYTES};
use dirgl::graph::csr::EdgeList;
use dirgl::graph::weights::randomize_weights;
use dirgl::prelude::*;

/// Strategy: a random small digraph as (n, edges).
fn arb_graph() -> impl Strategy<Value = (u32, Vec<(u32, u32)>)> {
    (8u32..120).prop_flat_map(|n| {
        let edges = prop::collection::vec((0..n, 0..n), 1..400);
        (Just(n), edges)
    })
}

fn build(n: u32, edges: &[(u32, u32)]) -> Csr {
    let mut el = EdgeList::new(n);
    el.edges = edges.to_vec();
    el.dedup();
    el.into_csr()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// CSR transpose is an involution and preserves the edge multiset.
    #[test]
    fn transpose_involution((n, edges) in arb_graph()) {
        let g = build(n, &edges);
        let tt = g.transpose().transpose();
        prop_assert_eq!(&g, &tt);
        prop_assert_eq!(g.num_edges(), g.transpose().num_edges());
    }

    /// Symmetrize is idempotent and dominates the original edge set.
    #[test]
    fn symmetrize_idempotent((n, edges) in arb_graph()) {
        let g = build(n, &edges);
        let s = g.symmetrize();
        prop_assert_eq!(&s, &s.symmetrize());
        for u in 0..n {
            for &v in g.neighbors(u) {
                if u != v {
                    prop_assert!(s.neighbors(u).contains(&v));
                    prop_assert!(s.neighbors(v).contains(&u));
                }
            }
        }
    }

    /// Every partition policy covers each edge exactly once and gives each
    /// vertex exactly one master.
    #[test]
    fn partition_covers_edges(
        (n, edges) in arb_graph(),
        policy in prop::sample::select(vec![
            Policy::Oec, Policy::Iec, Policy::Hvc, Policy::Cvc,
            Policy::Random, Policy::MetisLike, Policy::Xtrapulp,
        ]),
        devices in 1u32..9,
    ) {
        let g = build(n, &edges);
        let part = Partition::build(&g, policy, devices, 7);
        prop_assert_eq!(part.total_edges(), g.num_edges());
        let mut masters = vec![0u32; n as usize];
        for lg in &part.locals {
            for lv in 0..lg.num_masters {
                masters[lg.l2g[lv as usize] as usize] += 1;
            }
        }
        prop_assert!(masters.iter().all(|&m| m == 1));
        prop_assert!(part.replication_factor() >= 1.0 - 1e-12);
    }

    /// Distributed BFS equals sequential BFS on arbitrary graphs, any
    /// policy, both execution models.
    #[test]
    fn distributed_bfs_is_correct(
        (n, edges) in arb_graph(),
        policy in prop::sample::select(vec![Policy::Iec, Policy::Cvc, Policy::MetisLike]),
        sync in any::<bool>(),
        devices in 1u32..7,
    ) {
        let g = build(n, &edges);
        prop_assume!(g.num_edges() > 0);
        let app = Bfs::from_max_out_degree(&g);
        let variant = if sync { Variant::var3() } else { Variant::var4() };
        let rt = Runtime::new(Platform::bridges(devices), RunConfig::new(policy, variant));
        let out = rt.runner(&g, &app).execute().unwrap();
        let want = reference::bfs(&g, app.source);
        for (v, (got, w)) in out.values.iter().zip(&want).enumerate() {
            prop_assert!(*got == *w as f64, "vertex {v}: {got} vs {w}");
        }
    }

    /// BSP (Var3) and BASP (Var4) converge to identical outputs for bfs,
    /// cc and sssp on random weighted R-MAT graphs across all four paper
    /// partition policies — asynchrony may reorder and redo work but must
    /// never change the fixed point.
    #[test]
    fn bsp_and_basp_agree_on_rmat(
        scale in 7u32..9,
        seed in 0u64..1_000,
        policy in prop::sample::select(vec![
            Policy::Oec, Policy::Iec, Policy::Hvc, Policy::Cvc,
        ]),
        devices in 2u32..6,
    ) {
        let g = randomize_weights(
            &RmatConfig::new(scale, 8).seed(seed).generate(),
            60,
            seed,
        );
        let run = |variant: Variant| -> [Vec<f64>; 3] {
            let rt = Runtime::new(
                Platform::bridges(devices),
                RunConfig::new(policy, variant),
            );
            let bfs = rt.runner(&g, &Bfs::from_max_out_degree(&g)).execute().unwrap().values;
            let cc = rt.runner(&g, &Cc).execute().unwrap().values;
            let sssp = rt.runner(&g, &Sssp::from_max_out_degree(&g)).execute().unwrap().values;
            [bfs, cc, sssp]
        };
        let bsp = run(Variant::var3());
        let basp = run(Variant::var4());
        for (name, (sync, async_)) in
            ["bfs", "cc", "sssp"].iter().zip(bsp.iter().zip(basp.iter()))
        {
            prop_assert_eq!(
                sync, async_,
                "{} diverged under {:?} on {} devices", name, policy, devices
            );
        }
    }

    /// Bitset: set/get/count agree with a model Vec<bool>.
    #[test]
    fn bitset_matches_model(ops in prop::collection::vec((0u32..500, any::<bool>()), 1..200)) {
        let mut bs = DenseBitset::new(500);
        let mut model = vec![false; 500];
        for (i, set) in ops {
            if set { bs.set(i); model[i as usize] = true; }
            else { bs.clear(i); model[i as usize] = false; }
        }
        prop_assert_eq!(bs.count_ones() as usize, model.iter().filter(|&&b| b).count());
        let got: Vec<u32> = bs.iter_set().collect();
        let want: Vec<u32> =
            (0..500u32).filter(|&i| model[i as usize]).collect();
        prop_assert_eq!(got, want);
    }

    /// Message sizing: UO is monotone in updates and meets AS at full
    /// density plus the bitset header.
    #[test]
    fn message_sizes_are_consistent(entries in 1u64..100_000, updated in 0u64..100_000) {
        let updated = updated.min(entries);
        let uo = uo_message_bytes(entries, updated, VAL_BYTES);
        let uo_full = uo_message_bytes(entries, entries, VAL_BYTES);
        let as_ = as_message_bytes(entries, VAL_BYTES);
        prop_assert!(uo <= uo_full);
        prop_assert_eq!(uo_full, as_ + entries.div_ceil(64) * 8);
    }

    /// SimTime conversion roundtrips to nanosecond precision.
    #[test]
    fn simtime_roundtrip(ns in 0u64..u64::MAX / 4) {
        let t = SimTime(ns);
        let t2 = SimTime::from_secs_f64(t.as_secs_f64());
        // f64 has 53 bits of mantissa; below ~2^53 ns the roundtrip is
        // exact, above it within 1 part per 2^52.
        let err = t2.0.abs_diff(ns);
        prop_assert!(err <= 1 + (ns >> 50), "{ns} -> {}", t2.0);
    }

    /// Each lane of a K-batched run is byte-identical to the corresponding
    /// scalar single-source run: values, source labeling and summary, for
    /// bfs and sssp, K ∈ {1, 3, 64}, across the four paper policies and
    /// both engines (`Backend::Scalar` runs the K serial one-source jobs;
    /// `Backend::Lanes` packs them into one bit-matrix-frontier pass).
    #[test]
    fn batched_lanes_match_scalar_runs(
        seed in 0u64..1_000,
        policy in prop::sample::select(vec![
            Policy::Oec, Policy::Iec, Policy::Hvc, Policy::Cvc,
        ]),
        sync in any::<bool>(),
        k in prop::sample::select(vec![1u32, 3, 64]),
        use_sssp in any::<bool>(),
        devices in 2u32..6,
    ) {
        let g = randomize_weights(
            &RmatConfig::new(7, 8).seed(seed).generate(),
            60,
            seed,
        );
        let n = g.num_vertices();
        let mut sources: Vec<u32> = (0..k)
            .map(|i| (g.max_out_degree_vertex() + i * (n / (k + 1) + 1)) % n)
            .collect();
        sources.sort_unstable();
        sources.dedup();
        let variant = if sync { Variant::var3() } else { Variant::var4() };
        let rt = Runtime::new(Platform::bridges(devices), RunConfig::new(policy, variant));

        fn check<P: MultiSourceProgram>(
            rt: &Runtime,
            g: &Csr,
            base: &P,
            sources: &[u32],
        ) -> Result<(), TestCaseError>
        where
            P::Wire: Default,
        {
            let lanes = rt
                .runner(g, base)
                .backend(Backend::Lanes)
                .batch(sources)
                .execute()
                .unwrap();
            let scalar = rt.runner(g, base).batch(sources).execute().unwrap();
            prop_assert_eq!(lanes.lanes.len(), sources.len());
            prop_assert_eq!(scalar.lanes.len(), sources.len());
            for (l, s) in lanes.lanes.iter().zip(&scalar.lanes) {
                prop_assert_eq!(l.source, s.source);
                prop_assert_eq!(&l.summary, &s.summary);
                for (v, (a, b)) in l.values.iter().zip(&s.values).enumerate() {
                    prop_assert!(
                        a.to_bits() == b.to_bits(),
                        "source {} vertex {v}: lanes {a} vs scalar {b}",
                        l.source
                    );
                }
            }
            Ok(())
        }

        if use_sssp {
            check(&rt, &g, &Sssp::new(sources[0]), &sources)?;
        } else {
            check(&rt, &g, &Bfs::new(sources[0]), &sources)?;
        }
    }

    /// The CVC grid always factorizes correctly and its invariants hold on
    /// random graphs.
    #[test]
    fn cvc_grid_invariants((n, edges) in arb_graph(), devices in 2u32..17) {
        let g = build(n, &edges);
        let part = Partition::build(&g, Policy::Cvc, devices, 0);
        let grid = part.grid.unwrap();
        prop_assert_eq!(grid.num_devices(), devices);
        for lg in &part.locals {
            for lv in lg.num_masters..lg.num_vertices() {
                let owner = lg.master_device[lv as usize];
                if lg.has_out_edges(lv) {
                    prop_assert_eq!(grid.row(lg.device), grid.row(owner));
                }
                if lg.has_in_edges(lv) {
                    prop_assert_eq!(grid.col(lg.device), grid.col(owner));
                }
            }
        }
    }
}
