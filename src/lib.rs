//! # dirgl — distributed multi-GPU graph analytics, reproduced in Rust
//!
//! This is the facade crate of the `dirgl` workspace, a full reproduction of
//! *"A Study of Graph Analytics for Massive Datasets on Distributed
//! Multi-GPUs"* (Jatala et al., IPDPS-W 2020). It re-exports every subsystem:
//!
//! * [`graph`] — CSR graphs, synthetic dataset generators, the paper's
//!   Table I input catalog.
//! * [`partition`] — the CuSP-style streaming partitioner with the OEC, IEC,
//!   HVC and CVC policies (plus Gunrock-style random and Groute-style
//!   METIS-like baselines).
//! * [`gpusim`] — the virtual-time GPU execution model with the TWC, ALB,
//!   LB and per-vertex-thread-block edge schedulers.
//! * [`comm`] — the Gluon-style communication substrate: update bitsets,
//!   reduce/broadcast with structural-invariant elision, PCIe + network
//!   virtual-time transport, seeded fault injection and a retry/ack
//!   reliable-delivery layer.
//! * [`core`] — the D-IrGL-equivalent engine: BSP and BASP drivers, the
//!   Var1–Var4 optimization variants, execution reports, and the K-lane
//!   multi-source batching layer (up to 64 sources per engine pass).
//! * [`apps`] — bfs, cc, kcore, pagerank and sssp, plus sequential
//!   reference implementations.
//! * [`serve`] — the resident analytics job-server: load a dataset once,
//!   answer many concurrent queries against the shared prepared partition,
//!   with admission control and a keyed result cache.
//! * [`lux`] — the Lux-like distributed baseline.
//! * [`singlehost`] — Gunrock-like and Groute-like single-host baselines.
//!
//! ## Quickstart
//!
//! ```
//! use dirgl::prelude::*;
//!
//! // Generate a small R-MAT graph and run BFS on 4 simulated GPUs.
//! let graph = RmatConfig::new(10, 8).seed(42).generate();
//! let platform = Platform::homogeneous(4, GpuSpec::p100(), ClusterSpec::bridges());
//! let runtime = Runtime::new(platform, RunConfig::var4(Policy::Cvc));
//! let out = runtime.runner(&graph, &Bfs::from_max_out_degree(&graph)).execute().unwrap();
//! assert!(out.report.total_time.as_secs_f64() > 0.0);
//! ```

pub use dirgl_apps as apps;
pub use dirgl_comm as comm;
pub use dirgl_core as core;
pub use dirgl_gpusim as gpusim;
pub use dirgl_graph as graph;
pub use dirgl_partition as partition;
pub use dirgl_serve as serve;
pub use lux_sim as lux;
pub use singlehost_sim as singlehost;

/// Commonly used items, re-exported for examples and quick experiments.
pub mod prelude {
    pub use dirgl_apps::{
        betweenness_centrality, reference, Bfs, Cc, KCore, PageRank, PageRankPush, Sssp,
    };
    pub use dirgl_comm::{CommMode, FaultCounters, FaultPlan, RetryConfig, SimTime};
    pub use dirgl_core::{
        run_engine, Backend, BatchedProgram, CollectingSink, ExecModel, ExecutionModel,
        ExecutionReport, FaultEvent, JsonLinesSink, Lanes, LayoutChoice, LayoutKind, MsBfs,
        MultiRunOutput, MultiSourceProgram, NoopSink, PartitionArg, PreparedPartition,
        ResilienceStats, RoundRecord, RunConfig, RunError, Runner, Runtime, TraceSink, Variant,
        LANE_WIDTH,
    };
    pub use dirgl_gpusim::{Balancer, ClusterSpec, GpuSpec, Platform};
    pub use dirgl_graph::{
        Csr, Dataset, DatasetId, GraphStats, RmatConfig, SocialConfig, WebCrawlConfig,
    };
    pub use dirgl_partition::{Partition, PartitionMetrics, Policy};
    pub use dirgl_serve::{JobRequest, JobServer, JobSpec, Priority, ServeConfig};
    pub use lux_sim::LuxRuntime;
    pub use singlehost_sim::{GrouteSim, GunrockSim};
}
