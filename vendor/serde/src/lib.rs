//! Offline shim for `serde`: marker traits plus the no-op derive macros.
//! See `vendor/README.md` for scope and how to switch back to the registry
//! crate.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
