//! Offline shim for `rand` 0.8: exactly the surface the workspace uses —
//! `SmallRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}` over the
//! integer/float types that appear in the generators. Deterministic
//! (SplitMix64 seeding, xorshift64* stream); the stream differs from the
//! registry crate's, so seeded outputs are stable only within this shim.

use std::ops::{Range, RangeInclusive};

/// Core entropy source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from an `Rng` via [`Rng::gen`].
pub trait Uniform: Sized {
    /// Uniform sample over the type's natural `gen()` domain
    /// (full range for integers, `[0, 1)` for floats, fair coin for bool).
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Uniform for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Uniform for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Uniform for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Uniform for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Uniform sample from the range; panics when empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (reject_sample(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX as u64 {
                    return lo + (rng.next_u64() as $t);
                }
                lo + (reject_sample(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Uniform draw from `[0, span)` by rejection (no modulo bias).
fn reject_sample<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX % span) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

/// Convenience sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Uniform value of `T` (full integer range, `[0,1)` floats, fair bool).
    fn gen<T: Uniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform value in `range`; panics when the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Small, fast generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic small RNG: SplitMix64-expanded seed, xorshift64* steps.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            // SplitMix64 finalizer: spreads low-entropy seeds (0, 1, ...)
            // over the whole state space and never yields state 0.
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            SmallRng { state: z | 1 }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64_pub(), b.next_u64_pub());
        }
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: u32 = r.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: u64 = r.gen_range(0..=5);
            assert!(w <= 5);
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let av: u64 = a.gen();
        let bv: u64 = b.gen();
        assert_ne!(av, bv);
    }

    impl SmallRng {
        fn next_u64_pub(&mut self) -> u64 {
            use super::RngCore;
            self.next_u64()
        }
    }
}
