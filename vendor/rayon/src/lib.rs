//! Offline shim for `rayon`: the `par_*` entry points return ordinary
//! sequential `std` iterators, so every adapter (`map`, `zip`, `enumerate`,
//! `collect`, `sum`, ...) is the std one and results are bit-identical to a
//! rayon build (the simulation is deterministic either way); only wall-clock
//! parallelism is lost.

/// Drop-in for `rayon::prelude::*`.
pub mod prelude {
    /// Sequential stand-in for rayon's `IntoParallelIterator`.
    pub trait IntoParallelIterator {
        /// Element type.
        type Item;
        /// The (sequential) iterator returned.
        type Iter: Iterator<Item = Self::Item>;
        /// Consumes `self` into an iterator ("parallel" in real rayon).
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<I: IntoIterator> IntoParallelIterator for I {
        type Item = I::Item;
        type Iter = I::IntoIter;
        fn into_par_iter(self) -> I::IntoIter {
            self.into_iter()
        }
    }

    /// Sequential stand-in for rayon's `par_iter`/`par_iter_mut` on slices.
    pub trait ParallelSlice<T> {
        /// Shared iteration.
        fn par_iter(&self) -> std::slice::Iter<'_, T>;
        /// Mutable iteration.
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.iter()
        }
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
            self.iter_mut()
        }
    }

    impl<T> ParallelSlice<T> for Vec<T> {
        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.iter()
        }
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
            self.iter_mut()
        }
    }

    /// Sequential stand-in for rayon's parallel sorts.
    pub trait ParallelSort<T: Ord> {
        /// Unstable sort (delegates to `sort_unstable`).
        fn par_sort_unstable(&mut self);
        /// Stable sort (delegates to `sort`).
        fn par_sort(&mut self);
    }

    impl<T: Ord> ParallelSort<T> for [T] {
        fn par_sort_unstable(&mut self) {
            self.sort_unstable();
        }
        fn par_sort(&mut self) {
            self.sort();
        }
    }

    impl<T: Ord> ParallelSort<T> for Vec<T> {
        fn par_sort_unstable(&mut self) {
            self.as_mut_slice().sort_unstable();
        }
        fn par_sort(&mut self) {
            self.as_mut_slice().sort();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_surface_matches_sequential() {
        let mut v = vec![3, 1, 2];
        v.par_sort_unstable();
        assert_eq!(v, [1, 2, 3]);
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, [2, 4, 6]);
        v.par_iter_mut().for_each(|x| *x += 1);
        assert_eq!(v, [2, 3, 4]);
        let zipped: Vec<(i32, i32)> = v
            .clone()
            .into_par_iter()
            .zip(doubled.into_par_iter())
            .collect();
        assert_eq!(zipped, [(2, 2), (3, 4), (4, 6)]);
    }
}
