//! Offline `rayon` replacement with a real thread pool.
//!
//! Earlier revisions of this shim were purely sequential; it now executes
//! `par_iter` / `par_iter_mut` / `into_par_iter` stages on a persistent
//! worker pool ([`pool`]) while keeping results bit-identical to sequential
//! execution: mapped results are written into order-preserving slots, and
//! every reduction (`collect`, `sum`, zip/enumerate pairing, sort merges)
//! runs over that ordered materialization. Thread count comes from
//! `RAYON_NUM_THREADS`, the machine's available parallelism, or an explicit
//! [`ThreadPoolBuilder`]`::build().install(..)` scope; at 1 thread
//! everything degrades to inline sequential execution.

mod iter;
pub mod pool;

pub use pool::{current_num_threads, ThreadPool, ThreadPoolBuilder};

/// Drop-in for `rayon::prelude::*`.
pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, ParallelIterator, ParallelSlice, ParallelSort};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::ThreadPoolBuilder;

    #[test]
    fn par_surface_matches_sequential() {
        let mut v = vec![3, 1, 2];
        v.par_sort_unstable();
        assert_eq!(v, [1, 2, 3]);
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, [2, 4, 6]);
        v.par_iter_mut().for_each(|x| *x += 1);
        assert_eq!(v, [2, 3, 4]);
        let zipped: Vec<(i32, i32)> = v
            .clone()
            .into_par_iter()
            .zip(doubled.into_par_iter())
            .collect();
        assert_eq!(zipped, [(2, 2), (3, 4), (4, 6)]);
    }

    #[test]
    fn order_preserved_across_thread_counts() {
        let input: Vec<u64> = (0..10_000).collect();
        let expect: Vec<u64> = input.iter().map(|x| x * x + 1).collect();
        for threads in [1, 2, 3, 8] {
            let pool = ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let got: Vec<u64> =
                pool.install(|| input.clone().into_par_iter().map(|x| x * x + 1).collect());
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn empty_inputs_are_fine() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.clone().into_par_iter().map(|x| x + 1).collect();
        assert!(out.is_empty());
        empty
            .clone()
            .into_par_iter()
            .for_each(|_| panic!("no items"));
        let mut e2: Vec<u32> = Vec::new();
        e2.par_sort_unstable();
        assert!(e2.is_empty());
        assert_eq!(empty.par_iter().count(), 0);
    }

    #[test]
    fn panic_propagates_from_pool() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let r = std::panic::catch_unwind(|| {
            pool.install(|| {
                let v: Vec<u32> = (0..1000).collect();
                v.par_iter().for_each(|&x| {
                    if x == 617 {
                        panic!("boom at {x}");
                    }
                });
            });
        });
        let err = r.expect_err("panic must cross the pool boundary");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("boom at 617"), "got: {msg}");
        // The pool must still be usable after a panicked batch.
        let sum: u64 = pool.install(|| (0..100u64).into_par_iter().map(|x| x).sum());
        assert_eq!(sum, 4950);
    }

    #[test]
    fn parallel_sort_matches_sequential() {
        // Deterministic pseudo-random input (no rand dependency).
        let mut x = 0x9e3779b97f4a7c15u64;
        let mut v: Vec<u64> = (0..50_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x
            })
            .collect();
        let mut expect = v.clone();
        expect.sort_unstable();
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        pool.install(|| v.par_sort_unstable());
        assert_eq!(v, expect);
    }

    #[test]
    fn nested_parallelism_runs_inline() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let out: Vec<u32> = pool.install(|| {
            (0u32..64)
                .into_par_iter()
                .map(|i| (0u32..8).into_par_iter().map(|j| i * 8 + j).sum::<u32>())
                .collect()
        });
        let expect: Vec<u32> = (0u32..64)
            .map(|i| (0..8).map(|j| i * 8 + j).sum())
            .collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn install_scopes_nest_and_restore() {
        let one = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let four = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        one.install(|| {
            assert_eq!(rayon_current(), 1);
            four.install(|| assert_eq!(rayon_current(), 4));
            assert_eq!(rayon_current(), 1);
        });
    }

    fn rayon_current() -> usize {
        crate::current_num_threads()
    }
}
