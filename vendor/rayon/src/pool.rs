//! The persistent worker pool behind the `par_*` surface.
//!
//! A lazily-started set of `std::thread` workers pulls boxed tasks off a
//! shared queue. Callers submit a *batch* of tasks tied to a latch and block
//! until the whole batch has run ([`scope_run`]); because the submitting
//! thread never returns before the latch opens, tasks may safely borrow from
//! its stack even though the queue itself stores `'static` boxes (the
//! lifetime is erased on entry and re-guaranteed by the join). Panics inside
//! a task are caught, carried through the latch, and re-raised on the
//! submitting thread, so a panicking parallel closure behaves exactly like
//! its sequential counterpart.
//!
//! Thread count resolution, in priority order:
//!
//! 1. an active [`ThreadPool::install`] scope (tests pin 1 vs N this way),
//! 2. the `RAYON_NUM_THREADS` environment variable,
//! 3. `std::thread::available_parallelism()`.
//!
//! With one thread — however it was resolved — every entry point degrades
//! to plain inline execution: no workers are spawned, no boxing happens.

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread;

/// A type-erased unit of work as stored on the queue.
type Task = Box<dyn FnOnce() + Send + 'static>;

/// Queue shared between submitters and workers.
struct Shared {
    queue: Mutex<VecDeque<Task>>,
    available: Condvar,
}

/// One batch's completion latch: open when `remaining` hits zero. The first
/// panic payload of the batch is parked here for re-raising.
struct Latch {
    state: Mutex<(usize, Option<Box<dyn Any + Send>>)>,
    done: Condvar,
}

impl Latch {
    fn new(remaining: usize) -> Arc<Latch> {
        Arc::new(Latch {
            state: Mutex::new((remaining, None)),
            done: Condvar::new(),
        })
    }

    fn complete_one(&self, panic: Option<Box<dyn Any + Send>>) {
        let mut st = self.state.lock().unwrap();
        st.0 -= 1;
        if st.1.is_none() {
            st.1 = panic;
        }
        if st.0 == 0 {
            self.done.notify_all();
        }
    }

    /// Blocks until every task in the batch has completed, then re-raises
    /// the first panic, if any.
    fn join(&self) {
        let mut st = self.state.lock().unwrap();
        while st.0 > 0 {
            st = self.done.wait(st).unwrap();
        }
        if let Some(p) = st.1.take() {
            drop(st);
            resume_unwind(p);
        }
    }
}

struct Pool {
    shared: Arc<Shared>,
    /// Workers spawned so far; grown on demand up to the configured count.
    spawned: Mutex<usize>,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        shared: Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
        }),
        spawned: Mutex::new(0),
    })
}

thread_local! {
    /// Set while a thread is executing pool tasks; nested `par_*` calls on
    /// such a thread run inline instead of re-entering the queue, which
    /// would deadlock a fully-busy pool.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
    /// Thread-count override installed by [`ThreadPool::install`].
    static INSTALLED_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// True on threads currently running pool work (workers, or a submitter
/// helping out while it waits).
pub(crate) fn in_worker() -> bool {
    IN_WORKER.with(|w| w.get())
}

fn worker_loop(shared: Arc<Shared>) {
    IN_WORKER.with(|w| w.set(true));
    loop {
        let task = {
            let mut q = shared.queue.lock().unwrap();
            loop {
                if let Some(t) = q.pop_front() {
                    break t;
                }
                q = shared.available.wait(q).unwrap();
            }
        };
        task();
    }
}

/// `RAYON_NUM_THREADS`, or the machine's available parallelism. Read once.
fn configured_threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| thread::available_parallelism().map_or(1, |n| n.get()))
    })
}

/// The thread count governing the current scope: an `install` override if
/// one is active, the configured global count otherwise.
pub fn current_num_threads() -> usize {
    INSTALLED_THREADS
        .with(|t| t.get())
        .unwrap_or_else(configured_threads)
}

/// Makes sure at least `n` workers exist (never shrinks).
fn ensure_workers(n: usize) {
    let p = pool();
    let mut spawned = p.spawned.lock().unwrap();
    while *spawned < n {
        let shared = Arc::clone(&p.shared);
        thread::Builder::new()
            .name(format!("rayon-worker-{spawned}"))
            .spawn(move || worker_loop(shared))
            .expect("failed to spawn pool worker");
        *spawned += 1;
    }
}

/// Runs every task in `tasks` and returns once all have completed,
/// re-raising the first panic. Tasks may borrow from the caller's stack
/// (`'scope`): the join below is what makes the internal lifetime erasure
/// sound. Runs inline when the effective thread count is 1, when called
/// from inside a pool task, or when there is nothing to fan out.
pub(crate) fn scope_run<'scope>(tasks: Vec<Box<dyn FnOnce() + Send + 'scope>>) {
    let n = tasks.len();
    if n == 0 {
        return;
    }
    let threads = current_num_threads();
    if threads <= 1 || n == 1 || in_worker() {
        for t in tasks {
            t();
        }
        return;
    }
    ensure_workers(threads);
    let latch = Latch::new(n);
    {
        let shared = &pool().shared;
        let mut q = shared.queue.lock().unwrap();
        for task in tasks {
            // SAFETY: the box's pointee only borrows data outliving 'scope,
            // and this function does not return until `latch.join()` has
            // observed every task finished — the borrow can never dangle.
            let task: Task =
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Task>(task) };
            let latch = Arc::clone(&latch);
            q.push_back(Box::new(move || {
                let r = catch_unwind(AssertUnwindSafe(task));
                latch.complete_one(r.err());
            }));
        }
        shared.available.notify_all();
    }
    // Help drain the queue while waiting: on small machines the submitting
    // thread is a meaningful fraction of the pool.
    let was_worker = IN_WORKER.with(|w| w.replace(true));
    loop {
        let task = pool().shared.queue.lock().unwrap().pop_front();
        match task {
            Some(t) => t(),
            None => break,
        }
    }
    IN_WORKER.with(|w| w.set(was_worker));
    latch.join();
}

/// Maps `items` through `f` preserving order, fanning chunks of consecutive
/// items out across the pool. The chunking only partitions *where* each
/// item runs; every result lands in its input's slot, so the output is
/// independent of thread count and scheduling.
pub(crate) fn par_map_vec<T, R, F>(items: Vec<T>, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let threads = current_num_threads();
    if n <= 1 || threads <= 1 || in_worker() {
        return items.into_iter().map(f).collect();
    }
    // A few chunks per thread so an uneven item costs less than a whole
    // 1/threads share of the batch.
    let chunk = n.div_ceil(threads * 4).max(1);
    let mut out: Vec<Option<R>> = Vec::with_capacity(n);
    out.resize_with(n, || None);

    let mut it = items.into_iter();
    let mut in_chunks: Vec<Vec<T>> = Vec::with_capacity(n.div_ceil(chunk));
    loop {
        let c: Vec<T> = it.by_ref().take(chunk).collect();
        if c.is_empty() {
            break;
        }
        in_chunks.push(c);
    }

    let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(in_chunks.len());
    for (ins, outs) in in_chunks.into_iter().zip(out.chunks_mut(chunk)) {
        tasks.push(Box::new(move || {
            for (slot, item) in outs.iter_mut().zip(ins) {
                *slot = Some(f(item));
            }
        }));
    }
    scope_run(tasks);
    out.into_iter()
        .map(|s| s.expect("pool task skipped a slot"))
        .collect()
}

/// Sorts `v` by pre-sorting per-thread chunks in parallel, then letting the
/// std stable sort merge the sorted runs (it detects and exploits them).
pub(crate) fn par_sort_impl<T: Ord + Send>(v: &mut [T], stable_input: bool) {
    let n = v.len();
    let threads = current_num_threads();
    if n < 2 || threads <= 1 || in_worker() {
        if stable_input {
            v.sort();
        } else {
            v.sort_unstable();
        }
        return;
    }
    let chunk = n.div_ceil(threads).max(1);
    let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::new();
    for c in v.chunks_mut(chunk) {
        tasks.push(Box::new(move || {
            if stable_input {
                c.sort();
            } else {
                c.sort_unstable();
            }
        }));
    }
    scope_run(tasks);
    // Merge pass: stable, so equal elements keep their (already stable
    // within chunks) relative order when `stable_input` is requested.
    v.sort();
}

/// Builder mirroring `rayon::ThreadPoolBuilder` for the one use the
/// workspace has: pinning an explicit thread count in tests/benches.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Fresh builder (defaults to the globally configured thread count).
    pub fn new() -> ThreadPoolBuilder {
        ThreadPoolBuilder::default()
    }

    /// Sets the thread count for pools built from this builder.
    pub fn num_threads(mut self, n: usize) -> ThreadPoolBuilder {
        self.num_threads = Some(n);
        self
    }

    /// Builds the pool handle. Infallible here; the `Result` mirrors the
    /// real rayon signature.
    pub fn build(self) -> Result<ThreadPool, std::convert::Infallible> {
        Ok(ThreadPool {
            n: self
                .num_threads
                .filter(|&n| n > 0)
                .unwrap_or_else(configured_threads),
        })
    }
}

/// Handle carrying an explicit thread count; workers are shared with the
/// global pool rather than dedicated per handle.
pub struct ThreadPool {
    n: usize,
}

impl ThreadPool {
    /// Runs `f` with this pool's thread count governing every `par_*` call
    /// it makes on this thread (nested installs restore on exit).
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev = INSTALLED_THREADS.with(|t| t.replace(Some(self.n)));
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                INSTALLED_THREADS.with(|t| t.set(self.0));
            }
        }
        let _restore = Restore(prev);
        f()
    }

    /// The thread count this handle installs.
    pub fn current_num_threads(&self) -> usize {
        self.n
    }
}
