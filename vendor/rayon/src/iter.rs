//! The parallel-iterator surface, built on [`crate::pool`].
//!
//! A deliberately small subset of rayon's model: a [`ParallelIterator`] here
//! is anything that can *drive* itself to a `Vec` of items in input order.
//! Sources (vecs, slices) drive by collecting; [`Map`] is the one adapter
//! that actually fans out, pushing its closure through the pool's
//! order-preserving chunked map. Everything else (`zip`, `enumerate`,
//! `collect`, `sum`, ...) composes sequentially around that — cheap
//! bookkeeping next to the mapped work, and trivially deterministic.
//!
//! Order preservation is the load-bearing property: results are written into
//! per-item slots, so any pipeline produces bit-identical output whatever
//! the thread count.

use crate::pool::par_map_vec;

/// An iterator whose `map`/`for_each` stages run on the worker pool.
///
/// `drive` materializes the items in input order; adapters call it exactly
/// once.
pub trait ParallelIterator: Sized {
    /// Element type.
    type Item: Send;

    /// Produces every item, in order.
    fn drive(self) -> Vec<Self::Item>;

    /// Maps each item through `f` (in parallel when the stage is driven).
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync,
    {
        Map { base: self, f }
    }

    /// Pairs items positionally with `other`'s.
    fn zip<B>(self, other: B) -> Zip<Self, B>
    where
        B: ParallelIterator,
    {
        Zip { a: self, b: other }
    }

    /// Attaches each item's index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self }
    }

    /// Runs `f` on every item (in parallel).
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        let _ = par_map_vec(self.drive(), &f);
    }

    /// Collects into any `FromIterator` collection, preserving order.
    fn collect<C>(self) -> C
    where
        C: FromIterator<Self::Item>,
    {
        self.drive().into_iter().collect()
    }

    /// Sums the items.
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item>,
    {
        self.drive().into_iter().sum()
    }

    /// Number of items.
    fn count(self) -> usize {
        self.drive().len()
    }

    /// Largest item, if any.
    fn max(self) -> Option<Self::Item>
    where
        Self::Item: Ord,
    {
        self.drive().into_iter().max()
    }

    /// Smallest item, if any.
    fn min(self) -> Option<Self::Item>
    where
        Self::Item: Ord,
    {
        self.drive().into_iter().min()
    }
}

/// Owned-items source (what `into_par_iter` yields).
pub struct VecParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for VecParIter<T> {
    type Item = T;
    fn drive(self) -> Vec<T> {
        self.items
    }
}

/// Shared-borrow source over a slice.
pub struct SliceParIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SliceParIter<'a, T> {
    type Item = &'a T;
    fn drive(self) -> Vec<&'a T> {
        self.slice.iter().collect()
    }
}

/// Mutable-borrow source over a slice.
pub struct SliceParIterMut<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> ParallelIterator for SliceParIterMut<'a, T> {
    type Item = &'a mut T;
    fn drive(self) -> Vec<&'a mut T> {
        self.slice.iter_mut().collect()
    }
}

/// Conversion into a [`ParallelIterator`]; blanket-implemented for every
/// `IntoIterator` with sendable items, mirroring how pervasively rayon's
/// version applies.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Resulting parallel iterator.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Consumes `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<I> IntoParallelIterator for I
where
    I: IntoIterator,
    I::Item: Send,
{
    type Item = I::Item;
    type Iter = VecParIter<I::Item>;
    fn into_par_iter(self) -> VecParIter<I::Item> {
        VecParIter {
            items: self.into_iter().collect(),
        }
    }
}

/// The parallel map stage.
pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B, R, F> ParallelIterator for Map<B, F>
where
    B: ParallelIterator,
    R: Send,
    F: Fn(B::Item) -> R + Sync,
{
    type Item = R;
    fn drive(self) -> Vec<R> {
        par_map_vec(self.base.drive(), &self.f)
    }
}

/// Positional pairing of two parallel iterators.
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A, B> ParallelIterator for Zip<A, B>
where
    A: ParallelIterator,
    B: ParallelIterator,
{
    type Item = (A::Item, B::Item);
    fn drive(self) -> Vec<(A::Item, B::Item)> {
        self.a.drive().into_iter().zip(self.b.drive()).collect()
    }
}

/// Index attachment.
pub struct Enumerate<B> {
    base: B,
}

impl<B> ParallelIterator for Enumerate<B>
where
    B: ParallelIterator,
{
    type Item = (usize, B::Item);
    fn drive(self) -> Vec<(usize, B::Item)> {
        self.base.drive().into_iter().enumerate().collect()
    }
}

/// `par_iter`/`par_iter_mut` on slices and vecs.
pub trait ParallelSlice<T> {
    /// Shared parallel iteration.
    fn par_iter(&self) -> SliceParIter<'_, T>;
    /// Mutable parallel iteration.
    fn par_iter_mut(&mut self) -> SliceParIterMut<'_, T>;
}

impl<T> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> SliceParIter<'_, T> {
        SliceParIter { slice: self }
    }
    fn par_iter_mut(&mut self) -> SliceParIterMut<'_, T> {
        SliceParIterMut { slice: self }
    }
}

impl<T> ParallelSlice<T> for Vec<T> {
    fn par_iter(&self) -> SliceParIter<'_, T> {
        SliceParIter { slice: self }
    }
    fn par_iter_mut(&mut self) -> SliceParIterMut<'_, T> {
        SliceParIterMut {
            slice: self.as_mut_slice(),
        }
    }
}

/// Pool-assisted sorts: chunks pre-sort in parallel, a stable merge pass
/// finishes. Output is identical to the std sorts at any thread count.
pub trait ParallelSort<T: Ord + Send> {
    /// Parallel counterpart of `sort_unstable`.
    fn par_sort_unstable(&mut self);
    /// Parallel counterpart of `sort` (stable).
    fn par_sort(&mut self);
}

impl<T: Ord + Send> ParallelSort<T> for [T] {
    fn par_sort_unstable(&mut self) {
        crate::pool::par_sort_impl(self, false);
    }
    fn par_sort(&mut self) {
        crate::pool::par_sort_impl(self, true);
    }
}

impl<T: Ord + Send> ParallelSort<T> for Vec<T> {
    fn par_sort_unstable(&mut self) {
        crate::pool::par_sort_impl(self.as_mut_slice(), false);
    }
    fn par_sort(&mut self) {
        crate::pool::par_sort_impl(self.as_mut_slice(), true);
    }
}
