//! Offline shim for `serde_derive`: the derives accept the same attribute
//! grammar as the real crate but expand to nothing. The workspace only uses
//! `Serialize`/`Deserialize` as markers (all machine-readable output is
//! hand-written JSON), so empty expansions are sufficient.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
