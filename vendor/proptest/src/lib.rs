//! Offline shim for `proptest`: the strategy combinators, assertion macros
//! and `proptest!` runner the workspace uses. Case generation is
//! deterministic (case index seeds a SplitMix64/xorshift64* stream) so
//! failures reproduce; there is no shrinking — the runner prints the failing
//! case number instead.

pub mod test_runner {
    /// Why a test case did not pass.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case does not count.
        Reject,
    }

    /// Runner configuration (only `cases` is honored by the shim).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of accepted cases each property must pass.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` accepted cases per property.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic per-case random stream.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the stream (SplitMix64 finalizer; never a zero state).
        pub fn seed(seed: u64) -> TestRng {
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            TestRng {
                state: (z ^ (z >> 31)) | 1,
            }
        }

        /// Next 64 random bits (xorshift64*).
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        /// Uniform draw from `[0, span)`; `span` must be positive.
        pub fn below(&mut self, span: u64) -> u64 {
            assert!(span > 0, "cannot sample an empty range");
            if span.is_power_of_two() {
                return self.next_u64() & (span - 1);
            }
            let zone = u64::MAX - (u64::MAX % span) - 1;
            loop {
                let v = self.next_u64();
                if v <= zone {
                    return v % span;
                }
            }
        }
    }

    /// Prints the failing case number while a property body unwinds.
    pub struct CaseGuard {
        case: u32,
        /// Disarmed after the body returns cleanly.
        pub armed: bool,
    }

    impl CaseGuard {
        /// Guard for case number `case`.
        pub fn new(case: u32) -> CaseGuard {
            CaseGuard { case, armed: true }
        }
    }

    impl Drop for CaseGuard {
        fn drop(&mut self) {
            if self.armed && std::thread::panicking() {
                eprintln!(
                    "proptest shim: property failed on generated case #{}",
                    self.case
                );
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value from `rng`.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<B, F: Fn(Self::Value) -> B>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }

        /// Generates a value, then generates from the strategy `f` returns.
        fn prop_flat_map<B: Strategy, F: Fn(Self::Value) -> B>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { source: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, B, F: Fn(S::Value) -> B> Strategy for Map<S, F> {
        type Value = B;
        fn generate(&self, rng: &mut TestRng) -> B {
            (self.f)(self.source.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, B: Strategy, F: Fn(S::Value) -> B> Strategy for FlatMap<S, F> {
        type Value = B::Value;
        fn generate(&self, rng: &mut TestRng) -> B::Value {
            let inner = (self.f)(self.source.generate(rng));
            inner.generate(rng)
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.below(span) as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return lo + (rng.next_u64() as $t);
                    }
                    lo + (rng.below(span + 1) as $t)
                }
            }
        )*};
    }

    impl_int_strategy!(u8, u16, u32, u64, usize, i32, i64);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start + unit * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);

    /// Types with a canonical whole-domain strategy (see [`any`]).
    pub trait Arbitrary: Sized {
        /// Generates an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i32, i64);

    /// Strategy generating any value of `T` (see [`any`]).
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The whole-domain strategy for `T` (`any::<bool>()` etc.).
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

/// Combinator namespace (`prop::collection::vec`, `prop::sample::select`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use std::ops::{Range, RangeInclusive};

        /// Accepted size specifications for [`vec`].
        #[derive(Clone, Debug)]
        pub struct SizeRange {
            lo: usize,
            hi: usize, // inclusive
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> SizeRange {
                SizeRange { lo: n, hi: n }
            }
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> SizeRange {
                assert!(r.start < r.end, "empty size range");
                SizeRange {
                    lo: r.start,
                    hi: r.end - 1,
                }
            }
        }

        impl From<RangeInclusive<usize>> for SizeRange {
            fn from(r: RangeInclusive<usize>) -> SizeRange {
                SizeRange {
                    lo: *r.start(),
                    hi: *r.end(),
                }
            }
        }

        /// See [`vec`].
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.hi - self.size.lo + 1) as u64;
                let len = self.size.lo + rng.below(span) as usize;
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// A vector of `size` elements drawn from `element`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// See [`select`].
        pub struct Select<T: Clone> {
            options: Vec<T>,
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn generate(&self, rng: &mut TestRng) -> T {
                self.options[rng.below(self.options.len() as u64) as usize].clone()
            }
        }

        /// Uniformly selects one of `options`.
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select() needs at least one option");
            Select { options }
        }
    }
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            panic!("prop_assert!({}) failed", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            panic!($($fmt)+);
        }
    };
}

/// Fails the current case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b); };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+); };
}

/// Fails the current case if the operands compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => { assert_ne!($a, $b); };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+); };
}

/// Rejects the current case (does not count towards `cases`) unless `cond`
/// holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Declares property tests: each function runs `cases` accepted cases with
/// inputs drawn from the given strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); ) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut accepted = 0u32;
            let mut attempts = 0u32;
            let max_attempts = config.cases.saturating_mul(16).max(64);
            while accepted < config.cases && attempts < max_attempts {
                let mut rng = $crate::test_runner::TestRng::seed(
                    0x50_52_4F_50 ^ (attempts as u64).wrapping_mul(0x9E37_79B9),
                );
                attempts += 1;
                let mut guard = $crate::test_runner::CaseGuard::new(attempts);
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> = {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    // The immediately-called closure gives prop_assert!'s
                    // early `return Err(..)` somewhere to return to.
                    #[allow(clippy::redundant_closure_call)]
                    (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })()
                };
                guard.armed = false;
                match outcome {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                }
            }
            assert!(
                accepted >= config.cases.min(max_attempts),
                "proptest shim: too many rejected cases ({accepted}/{} accepted after {attempts} attempts)",
                config.cases
            );
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in 0u64..=5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 5);
        }

        #[test]
        fn flat_map_and_collections(
            (n, xs) in (1u32..50).prop_flat_map(|n| {
                (Just(n), prop::collection::vec(0..n, 1..20))
            }),
            pick in prop::sample::select(vec![1u8, 2, 3]),
            flag in any::<bool>(),
        ) {
            prop_assert!(!xs.is_empty() && xs.len() < 20);
            prop_assert!(xs.iter().all(|&x| x < n));
            prop_assert!(matches!(pick, 1..=3));
            let _ = flag;
        }

        #[test]
        fn assume_rejects_without_failing(v in 0u32..10) {
            prop_assume!(v % 2 == 0);
            prop_assert_eq!(v % 2, 0);
        }
    }
}
