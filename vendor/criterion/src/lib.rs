//! Offline shim for `criterion`: same registration surface
//! (`criterion_group!`/`criterion_main!`, `Criterion`, groups,
//! `BenchmarkId`, `black_box`), measuring mean/min wall time per benchmark
//! and printing one summary line each to stdout. No statistics beyond that.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier (defeats constant folding).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Collects per-iteration timing inside a benchmark body.
pub struct Bencher {
    samples: Vec<Duration>,
    target_samples: usize,
}

impl Bencher {
    /// Times `f` repeatedly: a few warm-up calls, then up to
    /// `target_samples` measured calls bounded by a wall-clock budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..3 {
            black_box(f());
        }
        let budget = Duration::from_millis(300);
        let started = Instant::now();
        while self.samples.len() < self.target_samples && started.elapsed() < budget {
            let t = Instant::now();
            black_box(f());
            self.samples.push(t.elapsed());
        }
    }

    fn report(&self, label: &str) {
        if self.samples.is_empty() {
            println!("bench {label:<40} (no samples)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().copied().unwrap_or_default();
        println!(
            "bench {label:<40} mean {:>12.3?}  min {:>12.3?}  ({} samples)",
            mean,
            min,
            self.samples.len()
        );
    }
}

/// A benchmark identifier (`group/function/parameter`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function/parameter` id.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Id naming only the parameter.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Things accepted as a benchmark name.
pub trait IntoBenchmarkLabel {
    /// The printable label.
    fn into_label(self) -> String;
}

impl IntoBenchmarkLabel for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkLabel for String {
    fn into_label(self) -> String {
        self
    }
}

impl IntoBenchmarkLabel for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

/// The harness entry point handed to every benchmark function.
#[derive(Default)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    fn effective_samples(&self) -> usize {
        if self.sample_size == 0 {
            50
        } else {
            self.sample_size
        }
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkLabel,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            target_samples: self.effective_samples(),
        };
        f(&mut b);
        b.report(&id.into_label());
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the measured sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkLabel,
        mut f: F,
    ) -> &mut Self {
        let samples = self
            .sample_size
            .unwrap_or_else(|| self.criterion.effective_samples());
        let mut b = Bencher {
            samples: Vec::new(),
            target_samples: samples,
        };
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id.into_label()));
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkLabel,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (printing is per-benchmark; nothing left to flush).
    pub fn finish(&mut self) {}
}

/// Declares a group function running the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_surface_runs() {
        let mut c = Criterion::default();
        c.bench_function("smoke", |b| b.iter(|| black_box(2 + 2)));
        let mut g = c.benchmark_group("group");
        g.sample_size(10);
        g.bench_with_input(BenchmarkId::new("param", 3), &3u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        g.bench_function("plain", |b| b.iter(|| black_box(1)));
        g.finish();
    }
}
