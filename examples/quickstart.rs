//! Quickstart: run BFS on a small R-MAT graph across 4 simulated
//! distributed GPUs and read the execution report.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dirgl::prelude::*;

fn main() {
    // 1. A graph. Generators are deterministic given a seed; `Dataset`
    //    offers scaled analogues of the paper's nine inputs instead.
    let graph = RmatConfig::new(14, 16).seed(42).generate();
    println!(
        "graph: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    // 2. A platform: 4 Tesla P100s, two per host, Omni-Path between hosts —
    //    the Bridges cluster of the paper at small scale.
    let platform = Platform::bridges(4);

    // 3. A configuration: partitioning policy + optimization variant.
    //    Var4 (ALB + UO + Async) is D-IrGL's default.
    let runtime = Runtime::new(platform, RunConfig::var4(Policy::Cvc));

    // 4. Run to convergence and inspect the report.
    let bfs = Bfs::from_max_out_degree(&graph);
    let out = runtime
        .runner(&graph, &bfs)
        .execute()
        .expect("fits in device memory");
    let r = &out.report;
    println!("bfs from vertex {} finished:", bfs.source);
    println!("  simulated time : {}", r.total_time);
    println!("  max compute    : {}", r.max_compute());
    println!("  min wait       : {}", r.min_wait());
    println!("  device comm    : {}", r.device_comm());
    println!(
        "  comm volume    : {:.3} GB over {} messages",
        r.comm_gb(),
        r.messages
    );
    println!("  rounds         : {}", r.rounds);

    // 5. Results are real, not simulated: verify against a sequential BFS.
    let want = reference::bfs(&graph, bfs.source);
    let ok = out.values.iter().zip(&want).all(|(g, w)| *g == *w as f64);
    println!(
        "  verified vs sequential reference: {}",
        if ok { "OK" } else { "MISMATCH" }
    );
    assert!(ok);
}
