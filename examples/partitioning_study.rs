//! Partitioning-policy study on a web-crawl analogue — a miniature of the
//! paper's §V-C analysis: how OEC/IEC/HVC/CVC trade replication,
//! communication partners, volume, and time as the device count grows.
//!
//! ```sh
//! cargo run --release --example partitioning_study
//! ```

use dirgl::comm::SyncPlan;
use dirgl::prelude::*;

fn main() {
    // A uk07-style web crawl: site locality, a high in-degree hub tail.
    let graph = WebCrawlConfig::new(40_000, 1_200_000, 1_500, 1_000, 40)
        .seed(7)
        .generate();
    let graph = dirgl::graph::weights::randomize_weights(&graph, 100, 7);
    let st = GraphStats::compute(&graph);
    println!(
        "web crawl analogue: |V|={} |E|={} maxDin={} diameter~{}\n",
        st.num_vertices, st.num_edges, st.max_in_degree, st.approx_diameter
    );

    for devices in [4u32, 16, 64] {
        println!("--- {devices} GPUs ---");
        println!(
            "{:>6}  {:>6}  {:>9}  {:>9}  {:>9}  {:>10}  {:>9}",
            "policy", "repl", "static", "partners", "sssp(s)", "volume(GB)", "rounds"
        );
        for policy in [Policy::Oec, Policy::Iec, Policy::Hvc, Policy::Cvc] {
            let part = Partition::build(&graph, policy, devices, 1);
            let metrics = PartitionMetrics::compute(&part);
            let plan = SyncPlan::build(&part, true, true);
            let max_partners = (0..devices)
                .map(|d| plan.partner_count(d))
                .max()
                .unwrap_or(0);

            let runtime = Runtime::new(Platform::bridges(devices), RunConfig::var4(policy));
            let app = Sssp::from_max_out_degree(&graph);
            match runtime.runner(&graph, &app).partition(part).execute() {
                Ok(out) => println!(
                    "{:>6}  {:>6.2}  {:>9.2}  {:>9}  {:>9.3}  {:>10.3}  {:>9}",
                    policy.name(),
                    metrics.replication_factor,
                    metrics.static_balance,
                    max_partners,
                    out.report.total_time.as_secs_f64(),
                    out.report.comm_gb(),
                    out.report.rounds,
                ),
                Err(e) => println!("{:>6}  {e}", policy.name()),
            }
        }
        println!();
    }
    println!("Expected (the paper's §V-C): CVC's partner set collapses to its");
    println!("grid row + column while edge-cuts talk to everyone, and CVC pulls");
    println!("ahead as the device count reaches 16+.");
}
