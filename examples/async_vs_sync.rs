//! BSP vs BASP (§V-B4 in miniature): bulk-asynchronous execution removes
//! waiting but can redo work. A high-diameter web crawl (uk14-style) makes
//! bfs pay for staleness; a low-diameter social graph lets BASP win.
//!
//! ```sh
//! cargo run --release --example async_vs_sync
//! ```

use dirgl::prelude::*;

fn run(graph: &Csr, variant: Variant, label: &str) {
    let runtime = Runtime::new(
        Platform::bridges(16),
        RunConfig::new(Policy::Cvc, variant).scale(1024),
    );
    let app = Bfs::from_max_out_degree(graph);
    let out = runtime.runner(graph, &app).execute().unwrap();
    let r = &out.report;
    println!(
        "  {label:<14} time={:<9} wait={:<9} rounds(min..max)={}..{} work={:.2e}",
        format!("{}", r.total_time),
        format!("{}", r.min_wait()),
        r.rounds,
        r.max_rounds,
        r.work_items as f64,
    );
}

fn main() {
    println!("high-diameter web crawl (uk14-style, diameter ~300):");
    let crawl = WebCrawlConfig::new(30_000, 900_000, 1_000, 800, 300)
        .seed(3)
        .generate();
    let crawl = dirgl::graph::weights::randomize_weights(&crawl, 100, 3);
    run(&crawl, Variant::var3(), "Var3 (Sync)");
    run(&crawl, Variant::var4(), "Var4 (Async)");

    println!("\nlow-diameter social network (diameter ~5):");
    let social = SocialConfig::new(30_000, 900_000, 2_000, 4_000)
        .seed(3)
        .generate();
    let social = dirgl::graph::weights::randomize_weights(&social, 100, 3);
    run(&social, Variant::var3(), "Var3 (Sync)");
    run(&social, Variant::var4(), "Var4 (Async)");

    println!("\nExpected (§V-B4): on the long-tail crawl, async devices run more");
    println!("local rounds and redo work; on the social graph the removed wait");
    println!("time dominates and async matches or wins.");
}
