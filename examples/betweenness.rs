//! Betweenness centrality (extension app): the two-phase Brandes driver
//! on a social-network analogue, verified against the sequential
//! reference.
//!
//! ```sh
//! cargo run --release --example betweenness
//! ```

use dirgl::apps::bc::reference_bc;
use dirgl::prelude::*;

fn main() {
    let graph = SocialConfig::new(6_000, 120_000, 800, 1_500)
        .diameter(8)
        .seed(5)
        .generate();
    let source = graph.max_out_degree_vertex();
    println!(
        "social analogue: |V|={} |E|={}; bc from hub vertex {source}",
        graph.num_vertices(),
        graph.num_edges()
    );

    for policy in [Policy::Iec, Policy::Cvc] {
        let runtime = Runtime::new(Platform::bridges(8), RunConfig::var4(policy));
        let out = betweenness_centrality(&runtime, &graph, source).expect("fits in memory");
        println!("\n{policy}:");
        println!(
            "  forward : {} over {} rounds (levels + path counts)",
            out.forward.total_time, out.forward.rounds
        );
        println!(
            "  backward: {} over {} rounds (round-gated dependency sweep)",
            out.backward.total_time, out.backward.rounds
        );
        // Top-5 central vertices.
        let mut ranked: Vec<(usize, f64)> = out.scores.iter().copied().enumerate().collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        println!("  top-5 by dependency score:");
        for (v, s) in ranked.iter().take(5) {
            println!("    vertex {v}: {s:.1}");
        }
        // Verify against Brandes.
        let want = reference_bc(&graph, source);
        let worst = out
            .scores
            .iter()
            .zip(&want)
            .map(|(g, w)| (g - w).abs() / (1.0 + w.abs()))
            .fold(0.0f64, f64::max);
        println!("  worst relative error vs sequential Brandes: {worst:.2e}");
        assert!(worst < 1e-3);
    }
    println!("\nNote: bc cannot run asynchronously (path counting needs aligned");
    println!("rounds), so the runtime falls back to BSP even under Var4 — the");
    println!("paper's \"BASP by default if the benchmark can be run asynchronously\".");
}
