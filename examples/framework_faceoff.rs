//! Framework face-off on the single-host Tuxedo machine (Table II in
//! miniature): the D-IrGL equivalent vs the Lux-, Gunrock- and Groute-like
//! baselines, all verified against the sequential references.
//!
//! ```sh
//! cargo run --release --example framework_faceoff
//! ```

use dirgl::prelude::*;

fn check(values: &[f64], want: &[f64]) -> &'static str {
    if values.iter().zip(want).all(|(a, b)| a == b) {
        "ok"
    } else {
        "MISMATCH"
    }
}

fn main() {
    // An orkut-style social network.
    let graph = SocialConfig::new(12_000, 900_000, 130, 130)
        .diameter(6)
        .seed(9)
        .generate();
    let graph = dirgl::graph::weights::randomize_weights(&graph, 100, 9);
    let platform = Platform::tuxedo();
    println!(
        "orkut-style input: |V|={} |E|={}; platform: {} GPUs (4x K80 + 2x GTX1080)\n",
        graph.num_vertices(),
        graph.num_edges(),
        platform.num_devices()
    );

    // --- BFS: Gunrock's direction optimization vs the rest.
    let src = graph.max_out_degree_vertex();
    let bfs_ref: Vec<f64> = reference::bfs(&graph, src)
        .iter()
        .map(|&d| d as f64)
        .collect();
    println!("bfs:");
    let gunrock = GunrockSim::new(platform.clone(), 1)
        .run_bfs(&graph)
        .unwrap();
    println!(
        "  Gunrock (direction-opt): {}  [{}]",
        gunrock.report.total_time,
        check(&gunrock.values, &bfs_ref)
    );
    let groute = GrouteSim::new(platform.clone(), 1).run_bfs(&graph).unwrap();
    println!(
        "  Groute  (async):         {}  [{}]",
        groute.report.total_time,
        check(&groute.values, &bfs_ref)
    );
    let dirgl = Runtime::new(platform.clone(), RunConfig::var4(Policy::Iec))
        .runner(&graph, &Bfs::new(src))
        .execute()
        .unwrap();
    println!(
        "  D-IrGL  (Var4/IEC):      {}  [{}]",
        dirgl.report.total_time,
        check(&dirgl.values, &bfs_ref)
    );

    // --- CC: all four frameworks, plus memory (Table III in miniature).
    let cc_ref: Vec<f64> = reference::cc(&graph.symmetrize())
        .iter()
        .map(|&c| c as f64)
        .collect();
    println!("\ncc (time / max memory across GPUs):");
    let gunrock = GunrockSim::new(platform.clone(), 1).run_cc(&graph).unwrap();
    println!(
        "  Gunrock: {} / {:.3} GB  [{}]",
        gunrock.report.total_time,
        gunrock.report.max_memory() as f64 / 1e9,
        check(&gunrock.values, &cc_ref)
    );
    let groute = GrouteSim::new(platform.clone(), 1).run_cc(&graph).unwrap();
    println!(
        "  Groute:  {} / {:.3} GB  [{}]",
        groute.report.total_time,
        groute.report.max_memory() as f64 / 1e9,
        check(&groute.values, &cc_ref)
    );
    let lux = LuxRuntime::new(platform.clone(), 1).run_cc(&graph).unwrap();
    println!(
        "  Lux:     {} / {:.3} GB (static reservation)  [{}]",
        lux.report.total_time,
        lux.report.max_memory() as f64 / 1e9,
        check(&lux.values, &cc_ref)
    );
    let dirgl = Runtime::new(platform.clone(), RunConfig::var4(Policy::Cvc))
        .runner(&graph, &Cc)
        .execute()
        .unwrap();
    println!(
        "  D-IrGL:  {} / {:.3} GB  [{}]",
        dirgl.report.total_time,
        dirgl.report.max_memory() as f64 / 1e9,
        check(&dirgl.values, &cc_ref)
    );

    println!("\nExpected (Tables II/III): Gunrock's bfs benefits from direction");
    println!("optimization; D-IrGL is competitive everywhere and uses the least");
    println!("memory; Lux reports its constant framebuffer reservation.");
}
